/**
 * @file
 * Deterministic-replay regression tests: the simulation kernel and the
 * end-to-end charging-event pipeline must be bit-for-bit repeatable.
 * Two runs from the same seed, in the same process, must execute the
 * same events in the same order and land in the same final state —
 * the property every "same seed, different answer" heisenbug breaks.
 */

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "core/charging_event_sim.h"
#include "sim/event_queue.h"
#include "trace/trace_generator.h"
#include "util/logging.h"
#include "util/random.h"

namespace dcbatt {
namespace {

using sim::EventQueue;
using sim::Tick;

/**
 * Drive an EventQueue with a seeded random workload — events that
 * reschedule, chain, cancel, and a periodic task riding on top — and
 * record the execution order.
 */
std::vector<std::pair<Tick, int>>
runSeededWorkload(uint64_t seed)
{
    util::Rng rng(seed);
    EventQueue queue;
    std::vector<std::pair<Tick, int>> trace;
    int next_label = 0;
    std::vector<sim::EventId> cancellable;

    std::function<void(int)> chain = [&](int depth) {
        int label = next_label++;
        trace.emplace_back(queue.now(), label);
        if (depth > 0 && rng.uniform() < 0.8) {
            Tick delay = rng.uniformInt(0, 50);
            queue.scheduleAfter(delay, [&chain, depth] {
                chain(depth - 1);
            });
        }
        if (rng.uniform() < 0.3) {
            cancellable.push_back(queue.scheduleAfter(
                rng.uniformInt(1, 100), [&] {
                    trace.emplace_back(queue.now(), -1);
                }));
        }
        if (!cancellable.empty() && rng.uniform() < 0.2) {
            queue.cancel(cancellable.back());
            cancellable.pop_back();
        }
    };

    for (int i = 0; i < 40; ++i) {
        queue.schedule(rng.uniformInt(0, 200),
                       [&chain] { chain(3); });
    }
    sim::PeriodicTask heartbeat(queue, 37, [&](Tick now) {
        trace.emplace_back(now, -2);
    });
    heartbeat.start(0);
    queue.runUntil(500);
    heartbeat.stop();
    return trace;
}

TEST(ReplayTest, EventQueueExecutionOrderIsRepeatable)
{
    auto first = runSeededWorkload(0xdcba77);
    auto second = runSeededWorkload(0xdcba77);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);

    // A different seed takes a genuinely different path (otherwise the
    // workload is not exercising anything).
    auto other = runSeededWorkload(0x1234);
    EXPECT_NE(first, other);
}

/** Fingerprint of everything a charging-event run decides. */
std::string
fingerprint(const core::ChargingEventResult &result)
{
    std::string text;
    for (double v : result.msbPower.values())
        text += util::strf("%.17g,", v);
    for (double v : result.capPower.values())
        text += util::strf("%.17g,", v);
    for (const core::RackOutcome &outcome : result.racks) {
        text += util::strf(
            "r%d:dod=%.17g,held=%d,capped=%d,sla=%d,t=%.17g;",
            outcome.rackId, outcome.initialDod,
            outcome.everHeld ? 1 : 0, outcome.everCapped ? 1 : 0,
            outcome.slaMet ? 1 : 0,
            outcome.chargeDuration ? outcome.chargeDuration->value()
                                   : -1.0);
    }
    return text;
}

TEST(ReplayTest, ChargingEventIsRepeatableWithinOneProcess)
{
    trace::TraceGenSpec spec;
    spec.rackCount = 24;
    spec.startTime = util::hours(10.0);
    spec.duration = util::hours(6.0);
    spec.priorities = power::makePriorityMix(8, 10, 6);
    // Scale the aggregate target to the 24-rack fleet (the default is
    // the paper's 316-rack MSB).
    spec.aggregateMean = util::kilowatts(152.0);
    spec.aggregateAmplitude = util::kilowatts(8.0);
    trace::TraceSet traces = trace::generateTraces(spec);

    core::ChargingEventConfig config;
    config.policy = core::PolicyKind::PriorityAware;
    // Tight enough that the coordinator actually holds/reorders racks.
    config.msbLimit = util::kilowatts(170.0);
    config.targetMeanDod = 0.5;
    config.priorities = power::makePriorityMix(8, 10, 6);
    config.postEventDuration = util::minutes(60.0);
    config.auditInterval = util::minutes(5.0);

    core::ChargingEventResult first =
        core::runChargingEvent(config, traces);
    core::ChargingEventResult second =
        core::runChargingEvent(config, traces);

    EXPECT_EQ(fingerprint(first), fingerprint(second));
    EXPECT_EQ(first.overloadSteps, second.overloadSteps);
    EXPECT_EQ(first.auditCount, second.auditCount);
    EXPECT_EQ(first.auditViolations, 0u);
    EXPECT_EQ(second.auditViolations, 0u);
}

} // namespace
} // namespace dcbatt
