/**
 * @file
 * sim::SweepRunner contract: results come back in task order and are
 * identical to running each config serially — the pool only changes
 * wall time, never the numbers.
 */

#include <vector>

#include <gtest/gtest.h>

#include "core/charging_event_sim.h"
#include "sim/sweep_runner.h"
#include "trace/trace_generator.h"
#include "util/thread_pool.h"

namespace dcbatt {
namespace {

trace::TraceSet
smallTraces(const std::vector<power::Priority> &priorities)
{
    trace::TraceGenSpec spec;
    spec.rackCount = static_cast<int>(priorities.size());
    spec.startTime = util::hours(10.0);
    spec.duration = util::hours(1.0);
    spec.priorities = priorities;
    return trace::generateTraces(spec);
}

core::ChargingEventConfig
smallConfig(const std::vector<power::Priority> &priorities,
            double limit_mw, double dod)
{
    core::ChargingEventConfig config;
    config.policy = core::PolicyKind::PriorityAware;
    config.msbLimit = util::megawatts(limit_mw);
    config.targetMeanDod = dod;
    config.priorities = priorities;
    config.postEventDuration = util::minutes(20.0);
    return config;
}

TEST(SweepRunner, ResultsMatchTaskOrderAndSerialRuns)
{
    auto priorities = power::makePriorityMix(22, 21, 21);
    trace::TraceSet traces = smallTraces(priorities);

    // Distinguishable tasks: different limits and discharge depths.
    const double limits[] = {1.2, 0.9, 0.8, 1.0, 0.85};
    const double dods[] = {0.3, 0.5, 0.7, 0.4, 0.6};
    std::vector<sim::SweepTask> tasks;
    for (size_t i = 0; i < 5; ++i) {
        sim::SweepTask task;
        task.label = util::strf("case%zu", i);
        task.config = smallConfig(priorities, limits[i], dods[i]);
        task.traces = &traces;
        tasks.push_back(std::move(task));
    }

    util::ThreadPool pool(4);
    sim::SweepRunner runner(pool);
    auto parallel_results = runner.run(tasks);
    ASSERT_EQ(parallel_results.size(), tasks.size());

    for (size_t i = 0; i < tasks.size(); ++i) {
        auto serial = core::runChargingEvent(tasks[i].config, traces);
        const auto &par = parallel_results[i];
        EXPECT_EQ(par.peakPower.value(), serial.peakPower.value())
            << "task " << i;
        EXPECT_EQ(par.overloadSteps, serial.overloadSteps)
            << "task " << i;
        EXPECT_EQ(par.meanInitialDod, serial.meanInitialDod)
            << "task " << i;
        for (int p = 0; p < 3; ++p) {
            EXPECT_EQ(par.slaMetByPriority[p],
                      serial.slaMetByPriority[p])
                << "task " << i << " priority " << p;
        }
        EXPECT_EQ(par.msbPower.size(), serial.msbPower.size())
            << "task " << i;
    }
}

TEST(SweepRunner, SingleThreadPoolGivesSameResults)
{
    auto priorities = power::makePriorityMix(11, 11, 10);
    trace::TraceSet traces = smallTraces(priorities);
    std::vector<sim::SweepTask> tasks;
    for (double limit : {0.5, 0.4}) {
        sim::SweepTask task;
        task.config = smallConfig(priorities, limit, 0.5);
        task.traces = &traces;
        tasks.push_back(std::move(task));
    }
    util::ThreadPool pool1(1);
    util::ThreadPool pool8(8);
    auto r1 = sim::SweepRunner(pool1).run(tasks);
    auto r8 = sim::SweepRunner(pool8).run(tasks);
    ASSERT_EQ(r1.size(), r8.size());
    for (size_t i = 0; i < r1.size(); ++i) {
        EXPECT_EQ(r1[i].peakPower.value(), r8[i].peakPower.value());
        EXPECT_EQ(r1[i].slaMetTotal(), r8[i].slaMetTotal());
    }
}

TEST(SweepRunner, EmptyTaskListIsFine)
{
    util::ThreadPool pool(2);
    sim::SweepRunner runner(pool);
    EXPECT_TRUE(runner.run({}).empty());
}

} // namespace
} // namespace dcbatt
