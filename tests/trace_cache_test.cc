/**
 * @file
 * Tests of the process-wide trace cache: identical specs share one
 * immutable instance, any field difference gets its own entry, the
 * cached data equals a fresh generation, and the hit/miss counters
 * account for every lookup.
 */

#include <gtest/gtest.h>

#include "trace/trace_cache.h"

namespace dcbatt::trace {
namespace {

/** Small, fast spec (a few seconds of generation work overall). */
TraceGenSpec
smallSpec()
{
    TraceGenSpec spec;
    spec.rackCount = 4;
    spec.duration = util::minutes(10.0);
    spec.step = util::Seconds(3.0);
    spec.seed = 99;
    return spec;
}

class TraceCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override { clearTraceCache(); }
    void TearDown() override { clearTraceCache(); }
};

TEST_F(TraceCacheTest, IdenticalSpecsShareOneInstance)
{
    auto a = sharedTraces(smallSpec());
    auto b = sharedTraces(smallSpec());
    EXPECT_EQ(a.get(), b.get());

    TraceCacheStats stats = traceCacheStats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
}

TEST_F(TraceCacheTest, CachedDataEqualsFreshGeneration)
{
    auto cached = sharedTraces(smallSpec());
    TraceSet fresh = generateTraces(smallSpec());

    ASSERT_EQ(cached->rackCount(), fresh.rackCount());
    ASSERT_EQ(cached->sampleCount(), fresh.sampleCount());
    for (int r = 0; r < fresh.rackCount(); ++r) {
        for (size_t s = 0; s < fresh.sampleCount(); ++s) {
            ASSERT_EQ(cached->rack(r)[s], fresh.rack(r)[s])
                << "rack " << r << " sample " << s;
        }
    }
}

TEST_F(TraceCacheTest, EveryFieldIsPartOfTheKey)
{
    auto base = sharedTraces(smallSpec());

    // Integer, double, unit-typed, and array-member fields: changing
    // any of them must miss the cache.
    std::vector<TraceGenSpec> variants;
    variants.push_back(smallSpec());
    variants.back().seed = 100;
    variants.push_back(smallSpec());
    variants.back().rackCount = 5;
    variants.push_back(smallSpec());
    variants.back().aggregateNoiseFraction += 1e-9;
    variants.push_back(smallSpec());
    variants.back().startTime = util::hours(1.0);
    variants.push_back(smallSpec());
    variants.back().profiles[2].noiseSigma += 1e-9;
    variants.push_back(smallSpec());
    variants.back().priorities = {power::Priority::P1};

    for (size_t i = 0; i < variants.size(); ++i) {
        auto other = sharedTraces(variants[i]);
        EXPECT_NE(base.get(), other.get()) << "variant " << i;
    }
    TraceCacheStats stats = traceCacheStats();
    EXPECT_EQ(stats.misses, 1u + variants.size());
    EXPECT_EQ(stats.hits, 0u);
}

TEST_F(TraceCacheTest, ClearDropsEntriesAndCounters)
{
    auto a = sharedTraces(smallSpec());
    clearTraceCache();
    TraceCacheStats stats = traceCacheStats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 0u);

    // The old shared_ptr stays valid (entries are immutable and
    // reference-counted); a re-request generates a new instance.
    auto b = sharedTraces(smallSpec());
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(a->sampleCount(), b->sampleCount());
}

} // namespace
} // namespace dcbatt::trace
