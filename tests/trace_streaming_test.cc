/**
 * @file
 * StreamingTraceSource determinism and paging contract.
 *
 * The pinned contract (streaming_trace_source.h): window w is a pure
 * function of (spec, w) — any access pattern, including re-fetching
 * a window after it was evicted, yields the same bytes; and resident
 * memory is bounded by maxResidentWindows regardless of run length.
 */

#include <gtest/gtest.h>

#include <vector>

#include "trace/streaming_trace_source.h"
#include "trace/trace_set.h"
#include "util/units.h"

namespace dcbatt::trace {
namespace {

StreamingTraceSpec
smallSpec(size_t window_samples = 50, size_t resident = 2)
{
    StreamingTraceSpec spec;
    spec.base.rackCount = 8;
    spec.base.duration = util::hours(1.0);   // 1200 samples at 3 s
    spec.base.seed = 1234;
    spec.base.aggregateMean = util::kilowatts(50.0);
    spec.base.aggregateAmplitude = util::kilowatts(5.0);
    spec.windowSamples = window_samples;
    spec.maxResidentWindows = resident;
    return spec;
}

/** Every sample of the trace, through the normal paging path. */
std::vector<double>
forwardWalk(StreamingTraceSource &source)
{
    std::vector<double> flat;
    for (size_t s = 0; s < source.sampleCount(); ++s) {
        for (int r = 0; r < source.rackCount(); ++r)
            flat.push_back(source.power(r, s));
    }
    return flat;
}

TEST(StreamingTrace, ShapeAndWindowMath)
{
    StreamingTraceSource source(smallSpec());
    EXPECT_EQ(source.sampleCount(), 1200u);
    EXPECT_EQ(source.windowCount(), 24u);
    EXPECT_EQ(source.windowIndexFor(0), 0u);
    EXPECT_EQ(source.windowIndexFor(49), 0u);
    EXPECT_EQ(source.windowIndexFor(50), 1u);
    EXPECT_EQ(source.sampleIndexAt(util::Seconds(0.0)), 0u);
    EXPECT_EQ(source.sampleIndexAt(util::Seconds(3.0)), 1u);
    EXPECT_EQ(source.sampleIndexAt(util::Seconds(4.5)), 1u);
    // Clamped at both ends.
    EXPECT_EQ(source.sampleIndexAt(util::Seconds(-10.0)), 0u);
    EXPECT_EQ(source.sampleIndexAt(util::hours(100.0)), 1199u);
}

TEST(StreamingTrace, RefetchAfterEvictionIsBitIdentical)
{
    StreamingTraceSource forward(smallSpec());
    std::vector<double> reference = forwardWalk(forward);
    // The forward walk with 24 windows and 2 resident must have
    // evicted almost everything.
    EXPECT_EQ(forward.stats().windowsGenerated, 24u);
    EXPECT_EQ(forward.stats().evictions, 22u);
    EXPECT_EQ(forward.stats().refetches, 0u);

    // Walk again: every window is refetched post-eviction and must
    // reproduce exactly.
    std::vector<double> again = forwardWalk(forward);
    ASSERT_EQ(reference.size(), again.size());
    for (size_t i = 0; i < reference.size(); ++i)
        ASSERT_EQ(reference[i], again[i]) << "flat index " << i;
    EXPECT_GE(forward.stats().refetches, 22u);
}

TEST(StreamingTrace, AccessPatternIndependence)
{
    // Jumping straight to the last window forces the checkpoint chain
    // to be built first; the values must match a plain forward walk
    // on a fresh source.
    StreamingTraceSource forward(smallSpec());
    std::vector<double> reference = forwardWalk(forward);

    StreamingTraceSource seeker(smallSpec());
    size_t last = seeker.sampleCount() - 1;
    // Read back-to-front, then front-to-back.
    for (size_t s = last + 1; s-- > 0;) {
        for (int r = 0; r < seeker.rackCount(); ++r) {
            ASSERT_EQ(seeker.power(r, s),
                      reference[s * 8 + static_cast<size_t>(r)])
                << "sample " << s << " rack " << r;
        }
    }
}

TEST(StreamingTrace, ResidentMemoryIsBounded)
{
    StreamingTraceSpec spec = smallSpec(50, 3);
    StreamingTraceSource source(spec);
    const size_t window_bytes =
        spec.windowSamples * static_cast<size_t>(spec.base.rackCount)
        * sizeof(double);
    for (size_t s = 0; s < source.sampleCount(); s += 7) {
        source.windowFor(s);
        EXPECT_LE(source.residentBytes(), 3 * window_bytes);
    }
    EXPECT_LE(source.stats().peakResidentBytes, 3 * window_bytes);
    EXPECT_GT(source.stats().evictions, 0u);
}

TEST(StreamingTrace, MaterializeMatchesPagedReads)
{
    StreamingTraceSource source(smallSpec());
    TraceSet set = source.materialize();
    ASSERT_EQ(set.rackCount(), source.rackCount());
    ASSERT_EQ(set.sampleCount(), source.sampleCount());

    StreamingTraceSource fresh(smallSpec());
    for (size_t s = 0; s < fresh.sampleCount(); ++s) {
        for (int r = 0; r < fresh.rackCount(); ++r)
            ASSERT_EQ(set.rack(r)[s], fresh.power(r, s));
    }
}

TEST(StreamingTrace, WindowSizeDoesNotChangeTotals)
{
    // The paging unit is an implementation knob, not a semantic one?
    // No: windows own RNG substreams, so DIFFERENT window sizes are
    // different generators by design. What must hold instead is that
    // the same window size reproduces across instances.
    StreamingTraceSource a(smallSpec(50, 2));
    StreamingTraceSource b(smallSpec(50, 5));
    // Different residency caps, same windowing: identical samples.
    for (size_t s = 0; s < a.sampleCount(); s += 13) {
        for (int r = 0; r < a.rackCount(); ++r)
            ASSERT_EQ(a.power(r, s), b.power(r, s));
    }
}

TEST(StreamingTrace, AggregateTracksTarget)
{
    StreamingTraceSource source(smallSpec());
    double sum = 0.0;
    for (size_t s = 0; s < source.sampleCount(); ++s) {
        const TraceWindow &window = source.windowFor(s);
        double column = 0.0;
        for (int r = 0; r < source.rackCount(); ++r)
            column += window.at(s, r);
        sum += column;
    }
    double mean = sum / static_cast<double>(source.sampleCount());
    // Calibration pins the aggregate near the configured band unless
    // per-rack clamps bind (they do not at 50 kW / 8 racks).
    EXPECT_NEAR(mean, 50e3, 5e3);
}

} // namespace
} // namespace dcbatt::trace
