/**
 * @file
 * Tests of the TraceSet container and the synthetic production trace
 * generator (Fig. 12 calibration).
 */

#include <filesystem>

#include <gtest/gtest.h>

#include "trace/trace_generator.h"
#include "trace/trace_set.h"

namespace dcbatt::trace {
namespace {

using util::Seconds;
using util::TimeSeries;

TraceGenSpec
smallSpec()
{
    TraceGenSpec spec;
    spec.rackCount = 32;
    spec.duration = util::hours(24.0);
    spec.step = Seconds(30.0);
    spec.aggregateMean = util::kilowatts(200.0);
    spec.aggregateAmplitude = util::kilowatts(10.0);
    spec.priorities = {power::Priority::P1, power::Priority::P2,
                       power::Priority::P3};
    return spec;
}

TEST(TraceSet, AppendAndAggregate)
{
    TraceSet set(Seconds(0.0), Seconds(3.0), 2);
    set.appendSample({100.0, 200.0});
    set.appendSample({150.0, 250.0});
    EXPECT_EQ(set.rackCount(), 2);
    EXPECT_EQ(set.sampleCount(), 2u);
    TimeSeries agg = set.aggregate();
    EXPECT_DOUBLE_EQ(agg[0], 300.0);
    EXPECT_DOUBLE_EQ(agg[1], 400.0);
    EXPECT_DOUBLE_EQ(set.rackPower(1, Seconds(4.0)).value(), 250.0);
}

TEST(TraceSetDeathTest, WrongSampleWidthPanics)
{
    TraceSet set(Seconds(0.0), Seconds(3.0), 2);
    EXPECT_DEATH(set.appendSample({1.0}), "wrong rack count");
}

TEST(TraceSet, CsvRoundTrip)
{
    TraceSet set(Seconds(12.0), Seconds(3.0), 3);
    set.appendSample({1.5, 2.5, 3.5});
    set.appendSample({4.25, 5.0, 6.0});
    set.appendSample({7.0, 8.0, 9.0});
    std::string path = testing::TempDir() + "/dcbatt_trace_test.csv";
    set.save(path);
    TraceSet loaded = TraceSet::load(path);
    EXPECT_EQ(loaded.rackCount(), 3);
    EXPECT_EQ(loaded.sampleCount(), 3u);
    EXPECT_NEAR(loaded.step().value(), 3.0, 1e-9);
    EXPECT_NEAR(loaded.start().value(), 12.0, 1e-9);
    for (int r = 0; r < 3; ++r) {
        for (size_t s = 0; s < 3; ++s)
            EXPECT_NEAR(loaded.rack(r)[s], set.rack(r)[s], 1e-3);
    }
    std::filesystem::remove(path);
}

TEST(Generator, DeterministicInSeed)
{
    TraceGenSpec spec = smallSpec();
    TraceSet a = generateTraces(spec);
    TraceSet b = generateTraces(spec);
    for (size_t s = 0; s < a.sampleCount(); s += 97)
        EXPECT_DOUBLE_EQ(a.rack(5)[s], b.rack(5)[s]);
    spec.seed = 43;
    TraceSet c = generateTraces(spec);
    EXPECT_NE(a.rack(5)[100], c.rack(5)[100]);
}

TEST(Generator, AggregateTracksTargetBand)
{
    TraceGenSpec spec = smallSpec();
    TraceSet set = generateTraces(spec);
    TimeSeries agg = set.aggregate();
    // Mean within 2% of target; excursions within the diurnal band
    // plus noise slack.
    EXPECT_NEAR(agg.mean(), 200e3, 4e3);
    EXPECT_GT(agg.minValue(), 200e3 - 10e3 - 4e3);
    EXPECT_LT(agg.maxValue(), 200e3 + 10e3 + 4e3);
}

TEST(Generator, PaperFleetBandIs1_9To2_1MW)
{
    // The headline Fig. 12 calibration: 316 racks, diurnal band
    // 1.9-2.1 MW.
    TraceGenSpec spec;
    spec.rackCount = 316;
    spec.duration = util::hours(48.0);
    spec.step = Seconds(60.0);
    spec.priorities = paperMsbPriorities();
    TraceSet set = generateTraces(spec);
    TimeSeries agg = set.aggregate();
    EXPECT_NEAR(agg.maxValue(), 2.1e6, 0.03e6);
    EXPECT_NEAR(agg.minValue(), 1.9e6, 0.03e6);
}

TEST(Generator, RackPowerWithinEnvelope)
{
    TraceGenSpec spec = smallSpec();
    TraceSet set = generateTraces(spec);
    for (int r = 0; r < set.rackCount(); ++r) {
        for (size_t s = 0; s < set.sampleCount(); s += 13) {
            ASSERT_GE(set.rack(r)[s], spec.rackMinPower.value());
            ASSERT_LE(set.rack(r)[s], spec.rackMaxPower.value());
        }
    }
}

TEST(Generator, FirstPeakNearConfiguredPeakTime)
{
    TraceGenSpec spec = smallSpec();
    spec.duration = util::hours(36.0);
    TraceSet set = generateTraces(spec);
    size_t peak = set.firstPeakIndex();
    double peak_hour = util::toHours(set.rack(0).timeAt(peak));
    // Peak of the first day: 14:00 +/- 1.5 h.
    EXPECT_NEAR(peak_hour, 14.0, 1.5);
}

TEST(Generator, StartTimeShiftsPhase)
{
    TraceGenSpec spec = smallSpec();
    spec.duration = util::hours(8.0);
    spec.startTime = util::hours(10.0);
    TraceSet set = generateTraces(spec);
    EXPECT_NEAR(set.start().value(), 10.0 * 3600.0, 1e-6);
    size_t peak = set.firstPeakIndex();
    double peak_hour = util::toHours(set.rack(0).timeAt(peak));
    EXPECT_NEAR(peak_hour, 14.0, 1.5);
}

TEST(Generator, WeekendDipVisible)
{
    TraceGenSpec spec = smallSpec();
    spec.duration = util::hours(24.0 * 7.0);
    spec.step = Seconds(300.0);
    TraceSet set = generateTraces(spec);
    TimeSeries agg = set.aggregate();
    // Compare the diurnal swing of day 2 (weekday) vs day 6 (weekend).
    auto day_swing = [&](int day) {
        size_t per_day = static_cast<size_t>(24.0 * 3600.0 / 300.0);
        TimeSeries slice = agg.slice(day * per_day,
                                     (day + 1) * per_day);
        return slice.maxValue() - slice.minValue();
    };
    EXPECT_LT(day_swing(5), day_swing(1));
}

TEST(Generator, PaperPrioritiesCount)
{
    auto priorities = paperMsbPriorities();
    EXPECT_EQ(priorities.size(), 316u);
}

TEST(GeneratorDeathTest, RejectsBadSpec)
{
    TraceGenSpec spec = smallSpec();
    spec.rackCount = 0;
    EXPECT_EXIT(generateTraces(spec), testing::ExitedWithCode(1),
                "positive");
}

} // namespace
} // namespace dcbatt::trace
