/**
 * @file
 * Compile-level test: the umbrella header is self-contained and
 * exposes the whole public API.
 */

#include "dcbatt.h"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaHeader, ExposesEveryLayer)
{
    using namespace dcbatt;
    EXPECT_GT(util::kilowatts(1.0).value(), 0.0);
    sim::EventQueue queue;
    EXPECT_TRUE(queue.empty());
    battery::ChargeTimeModel model;
    EXPECT_GT(model.chargeTime(0.5, util::Amperes(2.0)).value(), 0.0);
    EXPECT_STREQ(power::toString(power::Priority::P1), "P1");
    EXPECT_EQ(trace::paperMsbPriorities().size(), 316u);
    core::SlaTable sla = core::SlaTable::paperDefault();
    EXPECT_DOUBLE_EQ(sla.targetAor(power::Priority::P1), 0.9994);
    EXPECT_EQ(reliability::paperFailureData().size(), 11u);
}

} // namespace
