/**
 * @file
 * Behavior tests for the capability-annotated mutex wrapper
 * (util/annotations.h).
 *
 * The annotations themselves are checked at compile time by Clang's
 * -Wthread-safety (lint preset, static-analysis CI job); what these
 * tests pin down is that wrapping std::mutex/std::condition_variable
 * changed no runtime behavior on the paths the concurrency surface
 * depends on: mutual exclusion, wait/notify, early release(), the
 * contract checks on misuse, ThreadPool exception propagation, and
 * the MetricsRegistry retired-shard fold. The whole file runs under
 * tsan via the `tsan` preset.
 */

#include "util/annotations.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace dcbatt {
namespace {

// ---------------------------------------------------------------------
// Mutex / MutexLock basics

TEST(Annotations, MutexProvidesMutualExclusion)
{
    util::Mutex mutex;
    long counter = 0;
    util::ThreadPool pool(4);
    pool.parallelFor(1000, [&](size_t) {
        util::MutexLock lock(mutex);
        ++counter;
    });
    EXPECT_EQ(counter, 1000);
}

TEST(Annotations, TryLockReflectsContention)
{
    util::Mutex mutex;
    {
        util::MutexLock lock(mutex);
        EXPECT_FALSE(mutex.tryLock());
    }
    EXPECT_TRUE(mutex.tryLock());
    mutex.unlock();
}

TEST(Annotations, ReleaseUnlocksEarly)
{
    util::Mutex mutex;
    util::MutexLock lock(mutex);
    EXPECT_TRUE(lock.ownsLock());
    lock.release();
    EXPECT_FALSE(lock.ownsLock());
    // The mutex really is free again.
    EXPECT_TRUE(mutex.tryLock());
    mutex.unlock();
}

TEST(AnnotationsDeathTest, DoubleReleaseIsFatal)
{
    // Other tests in this binary spawn pool workers; fork from a
    // clean re-exec instead of the multi-threaded parent.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    util::Mutex mutex;
    util::MutexLock lock(mutex);
    lock.release();
    EXPECT_DEATH(lock.release(),
                 "MutexLock::release\\(\\) without the lock held");
}

TEST(AnnotationsDeathTest, WaitOnReleasedLockIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    util::Mutex mutex;
    util::CondVar cv;
    util::MutexLock lock(mutex);
    lock.release();
    EXPECT_DEATH(cv.wait(lock), "CondVar::wait on a released MutexLock");
}

// ---------------------------------------------------------------------
// CondVar wait/notify through the wrapper

TEST(Annotations, CondVarHandsOffThroughExplicitWaitLoop)
{
    util::Mutex mutex;
    util::CondVar cv;
    bool ready = false;
    int observed = 0;

    util::ThreadPool pool(1);
    auto consumer = pool.submit([&] {
        util::MutexLock lock(mutex);
        while (!ready)
            cv.wait(lock);
        observed = 42;
    });

    {
        util::MutexLock lock(mutex);
        ready = true;
    }
    cv.notifyOne();
    consumer.get();
    EXPECT_EQ(observed, 42);
}

// ---------------------------------------------------------------------
// ThreadPool behavior through the annotated wrapper

TEST(Annotations, ThreadPoolSubmitPropagatesExceptions)
{
    util::ThreadPool pool(2);
    auto future = pool.submit(
        []() -> int { throw std::runtime_error("task boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);
    // The pool stays usable after a throw.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(Annotations, ThreadPoolParallelForRethrowsFirstException)
{
    util::ThreadPool pool(4);
    std::atomic<int> ran{0};
    try {
        pool.parallelFor(100, [&](size_t i) {
            if (i == 13)
                throw std::logic_error("iteration boom");
            ran.fetch_add(1, std::memory_order_relaxed);
        });
        FAIL() << "parallelFor swallowed the exception";
    } catch (const std::logic_error &e) {
        EXPECT_STREQ(e.what(), "iteration boom");
    }
    EXPECT_LE(ran.load(), 99);
}

// ---------------------------------------------------------------------
// MetricsRegistry retired-shard fold (the annotated registry must
// still fold counts from threads that have already exited).

TEST(Annotations, MetricsRegistryFoldsRetiredShards)
{
    obs::Counter &counter = obs::counter("annotations.retired_fold");
    const uint64_t before = counter.value();
    {
        util::ThreadPool pool(4);
        pool.parallelFor(400, [&](size_t) { counter.add(1); });
        // Pool destruction retires every worker's shard; the counts
        // must fold into the registry rather than vanish.
    }
    counter.add(1);  // main-thread shard stays live
    EXPECT_EQ(counter.value(), before + 401);

    const obs::MetricsSnapshot snap = obs::snapshotMetrics();
    const obs::MetricValue *merged = snap.find("annotations.retired_fold");
    ASSERT_NE(merged, nullptr);
    EXPECT_EQ(merged->count, before + 401);
}

} // namespace
} // namespace dcbatt
