/**
 * @file
 * Unit tests for the bump-allocator arena: alignment, reset/reuse,
 * oversize fallback, high-water accounting, and the std container
 * adapter.
 */

#include <cstdint>
#include <numeric>

#include <gtest/gtest.h>

#include "util/arena.h"

namespace dcbatt::util {
namespace {

uintptr_t
addr(const void *p)
{
    return reinterpret_cast<uintptr_t>(p);
}

TEST(Arena, RespectsAlignment)
{
    Arena arena(1024);
    // Deliberately misalign the bump cursor, then ask for stricter
    // alignments.
    arena.allocate(1, 1);
    for (size_t alignment : {2u, 8u, 16u, 32u, 64u}) {
        void *p = arena.allocate(24, alignment);
        EXPECT_EQ(addr(p) % alignment, 0u)
            << "alignment " << alignment;
        arena.allocate(1, 1); // re-misalign for the next round
    }
}

TEST(Arena, BumpsWithinBlock)
{
    Arena arena(1024);
    auto *a = arena.allocateArray<double>(4);
    auto *b = arena.allocateArray<double>(4);
    // Same block, later address, no overlap.
    EXPECT_GE(addr(b), addr(a + 4));
    EXPECT_EQ(arena.footprintBytes(), arena.blockBytes());
}

TEST(Arena, ResetReusesBlocks)
{
    Arena arena(1024);
    void *first = arena.allocate(100, 8);
    arena.allocate(500, 8);
    size_t footprint = arena.footprintBytes();
    arena.reset();
    EXPECT_EQ(arena.usedBytes(), 0u);
    // Same storage handed out again, nothing new mapped.
    EXPECT_EQ(arena.allocate(100, 8), first);
    EXPECT_EQ(arena.footprintBytes(), footprint);
}

TEST(Arena, OversizeRequestsFallBackToDedicatedBlock)
{
    Arena arena(256);
    auto *big = arena.allocateArray<double>(1000); // ~8 KB >> 256 B
    std::iota(big, big + 1000, 0.0);
    EXPECT_EQ(big[999], 999.0);
    EXPECT_GE(arena.footprintBytes(), 1000 * sizeof(double));
    // The small block is still usable afterwards.
    void *small = arena.allocate(16, 8);
    EXPECT_NE(small, nullptr);
    // And the dedicated block is retained across reset.
    size_t footprint = arena.footprintBytes();
    arena.reset();
    arena.allocateArray<double>(1000);
    EXPECT_EQ(arena.footprintBytes(), footprint);
}

TEST(Arena, ArrayIsValueInitialized)
{
    Arena arena(512);
    auto *values = arena.allocateArray<int64_t>(32);
    for (int i = 0; i < 32; ++i)
        values[i] = i;
    arena.reset();
    auto *again = arena.allocateArray<int64_t>(32);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(again[i], 0) << "stale data at " << i;
}

TEST(Arena, HighWaterTracksMaxAcrossResets)
{
    Arena arena(4096);
    arena.allocate(100, 1);
    EXPECT_EQ(arena.highWaterBytes(), 100u);
    arena.reset();
    arena.allocate(300, 1);
    EXPECT_EQ(arena.highWaterBytes(), 300u);
    arena.reset();
    arena.allocate(50, 1);
    EXPECT_EQ(arena.usedBytes(), 50u);
    EXPECT_EQ(arena.highWaterBytes(), 300u);
}

TEST(Arena, ZeroByteAllocationIsValid)
{
    Arena arena(128);
    void *a = arena.allocate(0, 1);
    void *b = arena.allocate(0, 1);
    EXPECT_NE(a, nullptr);
    EXPECT_NE(a, b); // distinct objects
}

TEST(ArenaAllocator, BacksStdVector)
{
    Arena arena(64 * 1024);
    ArenaVector<double> row{ArenaAllocator<double>(arena)};
    row.reserve(512);
    size_t footprint = arena.footprintBytes();
    for (int i = 0; i < 512; ++i)
        row.push_back(static_cast<double>(i));
    EXPECT_EQ(row[511], 511.0);
    // All storage came from the arena, not the heap.
    EXPECT_EQ(arena.footprintBytes(), footprint);
    EXPECT_GE(arena.usedBytes(), 512 * sizeof(double));
}

} // namespace
} // namespace dcbatt::util
