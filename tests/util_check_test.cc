/**
 * @file
 * Unit tests for the DCBATT contract macros (util/check.h): firing on
 * violation, lazy message formatting, handler swapping, and the
 * release-build no-op behaviour of DCBATT_ASSERT.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/check.h"

namespace dcbatt::util {
namespace {

/** Exception thrown by the capturing handler to unwind the macro. */
struct CheckUnwind : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

CheckFailure g_captured;
int g_capture_count = 0;

[[noreturn]] void
capturingHandler(const CheckFailure &failure)
{
    g_captured = failure;
    ++g_capture_count;
    throw CheckUnwind(failure.describe());
}

/** Installs the capturing handler for one test's scope. */
class CheckTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        g_captured = CheckFailure{};
        g_capture_count = 0;
        previous_ = setCheckFailHandler(&capturingHandler);
    }

    void
    TearDown() override
    {
        setCheckFailHandler(previous_);
    }

  private:
    CheckFailHandler previous_ = nullptr;
};

TEST_F(CheckTest, RequirePassesSilently)
{
    DCBATT_REQUIRE(1 + 1 == 2, "arithmetic broke");
    EXPECT_EQ(g_capture_count, 0);
}

TEST_F(CheckTest, RequireFiresWithFormattedMessage)
{
    int value = -3;
    EXPECT_THROW(
        DCBATT_REQUIRE(value >= 0, "value %d must be nonnegative",
                       value),
        CheckUnwind);
    EXPECT_EQ(g_capture_count, 1);
    EXPECT_EQ(g_captured.kind, CheckKind::Require);
    EXPECT_STREQ(g_captured.condition, "value >= 0");
    EXPECT_EQ(g_captured.message, "value -3 must be nonnegative");
    EXPECT_NE(std::string(g_captured.file).find("util_check_test"),
              std::string::npos);
    EXPECT_GT(g_captured.line, 0);
}

TEST_F(CheckTest, DescribeMentionsKindFileAndMessage)
{
    EXPECT_THROW(DCBATT_REQUIRE(false, "broken %s", "badly"),
                 CheckUnwind);
    std::string text = g_captured.describe();
    EXPECT_NE(text.find("REQUIRE"), std::string::npos) << text;
    EXPECT_NE(text.find("util_check_test"), std::string::npos) << text;
    EXPECT_NE(text.find("broken badly"), std::string::npos) << text;
}

TEST_F(CheckTest, UnreachableFires)
{
    EXPECT_THROW(DCBATT_UNREACHABLE("fell off a switch over %d", 7),
                 CheckUnwind);
    EXPECT_EQ(g_captured.kind, CheckKind::Unreachable);
    EXPECT_STREQ(g_captured.condition, "");
    EXPECT_EQ(g_captured.message, "fell off a switch over 7");
}

#if DCBATT_CHECKS_ENABLED

TEST_F(CheckTest, AssertFiresWhenChecksEnabled)
{
    EXPECT_THROW(DCBATT_ASSERT(2 < 1, "ordering inverted"),
                 CheckUnwind);
    EXPECT_EQ(g_captured.kind, CheckKind::Assert);
    EXPECT_STREQ(g_captured.condition, "2 < 1");
}

TEST_F(CheckTest, AssertEvaluatesConditionOnce)
{
    int evaluations = 0;
    DCBATT_ASSERT(++evaluations > 0, "side effect");
    EXPECT_EQ(evaluations, 1);
}

#else

TEST_F(CheckTest, AssertIsCompiledOut)
{
    int evaluations = 0;
    // The condition must not even be evaluated in a release build.
    DCBATT_ASSERT(++evaluations > 0, "side effect");
    EXPECT_EQ(evaluations, 0);
    EXPECT_EQ(g_capture_count, 0);
}

#endif // DCBATT_CHECKS_ENABLED

TEST_F(CheckTest, MessageFormattedOnlyOnFailure)
{
    // strf on the failure path happens inside the macro; on the happy
    // path the arguments are not touched. Use a counting function to
    // prove it.
    int formats = 0;
    auto count = [&formats]() {
        ++formats;
        return 1;
    };
    DCBATT_REQUIRE(true, "never formatted %d", count());
    EXPECT_EQ(formats, 0);
}

TEST(CheckHandlerTest, SetReturnsPreviousAndResetRestoresDefault)
{
    CheckFailHandler original = checkFailHandler();
    ASSERT_NE(original, nullptr);

    CheckFailHandler previous = setCheckFailHandler(&capturingHandler);
    EXPECT_EQ(previous, original);
    EXPECT_EQ(checkFailHandler(), &capturingHandler);

    resetCheckFailHandler();
    EXPECT_EQ(checkFailHandler(), original);
}

TEST(CheckKindTest, ToStringNamesEveryKind)
{
    EXPECT_STREQ(toString(CheckKind::Require), "REQUIRE");
    EXPECT_STREQ(toString(CheckKind::Assert), "ASSERT");
    EXPECT_STREQ(toString(CheckKind::Unreachable), "UNREACHABLE");
}

} // namespace
} // namespace dcbatt::util
