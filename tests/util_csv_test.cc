/**
 * @file
 * Unit tests for CSV reading/writing and round-trips.
 */

#include <cstdio>
#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "util/csv.h"

namespace dcbatt::util {
namespace {

TEST(CsvWriter, PlainRow)
{
    std::ostringstream out;
    CsvWriter w(out);
    w.writeRow({"a", "b", "c"});
    EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriter, QuotesWhenNeeded)
{
    std::ostringstream out;
    CsvWriter w(out);
    w.writeRow({"plain", "has,comma", "has\"quote", "has\nnewline"});
    EXPECT_EQ(out.str(),
              "plain,\"has,comma\",\"has\"\"quote\",\"has\nnewline\"\n");
}

TEST(CsvWriter, NumericRow)
{
    std::ostringstream out;
    CsvWriter w(out);
    w.writeNumericRow({1.0, 2.5, -3.125});
    EXPECT_EQ(out.str(), "1,2.5,-3.125\n");
}

TEST(ParseCsvLine, SimpleFields)
{
    auto fields = parseCsvLine("a,b,c");
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[2], "c");
}

TEST(ParseCsvLine, EmptyFields)
{
    auto fields = parseCsvLine("a,,c,");
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[1], "");
    EXPECT_EQ(fields[3], "");
}

TEST(ParseCsvLine, QuotedFields)
{
    auto fields = parseCsvLine("\"has,comma\",\"esc\"\"aped\",plain");
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "has,comma");
    EXPECT_EQ(fields[1], "esc\"aped");
    EXPECT_EQ(fields[2], "plain");
}

TEST(ParseCsvLine, ToleratesCarriageReturn)
{
    auto fields = parseCsvLine("a,b\r");
    ASSERT_EQ(fields.size(), 2u);
    EXPECT_EQ(fields[1], "b");
}

TEST(ReadCsv, SkipsEmptyLines)
{
    std::istringstream in("a,b\n\nc,d\n\r\n");
    auto rows = readCsv(in);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[1][0], "c");
}

TEST(CsvFile, RoundTrip)
{
    std::string path = testing::TempDir() + "/dcbatt_csv_test.csv";
    std::vector<std::vector<std::string>> rows{
        {"time", "value"},
        {"0.0", "1,5"},
        {"3.0", "quote\"d"},
    };
    writeCsvFile(path, rows);
    auto read_back = readCsvFile(path);
    EXPECT_EQ(read_back, rows);
    std::filesystem::remove(path);
}

TEST(CsvFileDeathTest, MissingFileIsFatal)
{
    EXPECT_EXIT(readCsvFile("/nonexistent/dir/nope.csv"),
                testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace dcbatt::util
