/**
 * @file
 * Unit tests for linear/bilinear interpolation grids.
 */

#include <gtest/gtest.h>

#include "util/interpolate.h"

namespace dcbatt::util {
namespace {

TEST(Lerp, Basics)
{
    EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(lerp(10.0, 0.0, 0.25), 7.5);
    EXPECT_DOUBLE_EQ(lerp(3.0, 3.0, 0.9), 3.0);
}

TEST(IntervalIndex, ClampsAndFinds)
{
    std::vector<double> axis{0.0, 1.0, 2.0, 4.0};
    EXPECT_EQ(intervalIndex(axis, -1.0), 0u);
    EXPECT_EQ(intervalIndex(axis, 0.5), 0u);
    EXPECT_EQ(intervalIndex(axis, 1.5), 1u);
    EXPECT_EQ(intervalIndex(axis, 3.0), 2u);
    EXPECT_EQ(intervalIndex(axis, 9.0), 2u);
}

TEST(Grid1D, InterpolatesLinearly)
{
    Grid1D g({0.0, 1.0, 2.0}, {0.0, 10.0, 40.0});
    EXPECT_DOUBLE_EQ(g(0.0), 0.0);
    EXPECT_DOUBLE_EQ(g(0.5), 5.0);
    EXPECT_DOUBLE_EQ(g(1.5), 25.0);
    EXPECT_DOUBLE_EQ(g(2.0), 40.0);
}

TEST(Grid1D, ClampsOutsideRange)
{
    Grid1D g({0.0, 1.0}, {3.0, 7.0});
    EXPECT_DOUBLE_EQ(g(-5.0), 3.0);
    EXPECT_DOUBLE_EQ(g(5.0), 7.0);
}

TEST(Grid1D, InvertIncreasing)
{
    Grid1D g({0.0, 1.0, 2.0}, {0.0, 10.0, 40.0});
    EXPECT_DOUBLE_EQ(g.invert(5.0), 0.5);
    EXPECT_DOUBLE_EQ(g.invert(25.0), 1.5);
    EXPECT_DOUBLE_EQ(g.invert(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(g.invert(99.0), 2.0);
}

TEST(Grid1D, InvertDecreasing)
{
    Grid1D g({0.0, 1.0, 2.0}, {40.0, 10.0, 0.0});
    EXPECT_DOUBLE_EQ(g.invert(25.0), 0.5);
    EXPECT_DOUBLE_EQ(g.invert(5.0), 1.5);
    EXPECT_DOUBLE_EQ(g.invert(99.0), 0.0);
    EXPECT_DOUBLE_EQ(g.invert(-1.0), 2.0);
}

TEST(Grid1DDeathTest, RejectsBadAxes)
{
    EXPECT_DEATH(Grid1D({1.0, 1.0}, {0.0, 1.0}), "increasing");
    EXPECT_DEATH(Grid1D({0.0, 1.0}, {0.0}), "mismatch");
    EXPECT_DEATH(Grid1D({0.0}, {0.0}), "samples");
}

TEST(Grid2D, ReproducesCornerValues)
{
    // values row-major: x in {0,1}, y in {0,10}
    Grid2D g({0.0, 1.0}, {0.0, 10.0}, {1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(g(0.0, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(g(0.0, 10.0), 2.0);
    EXPECT_DOUBLE_EQ(g(1.0, 0.0), 3.0);
    EXPECT_DOUBLE_EQ(g(1.0, 10.0), 4.0);
}

TEST(Grid2D, BilinearMidpoint)
{
    Grid2D g({0.0, 1.0}, {0.0, 10.0}, {1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(g(0.5, 5.0), 2.5);
    EXPECT_DOUBLE_EQ(g(0.5, 0.0), 2.0);
    EXPECT_DOUBLE_EQ(g(0.0, 5.0), 1.5);
}

TEST(Grid2D, ClampsOutside)
{
    Grid2D g({0.0, 1.0}, {0.0, 10.0}, {1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(g(-3.0, -3.0), 1.0);
    EXPECT_DOUBLE_EQ(g(9.0, 99.0), 4.0);
}

TEST(Grid2D, ExactlyLinearFunctionIsReproduced)
{
    // f(x, y) = 2x + 3y sampled on a 3x4 grid; bilinear interpolation
    // must reproduce a separable linear function exactly everywhere.
    std::vector<double> xs{0.0, 0.5, 2.0};
    std::vector<double> ys{0.0, 1.0, 1.5, 4.0};
    std::vector<double> values;
    for (double x : xs) {
        for (double y : ys)
            values.push_back(2.0 * x + 3.0 * y);
    }
    Grid2D g(xs, ys, values);
    for (double x : {0.1, 0.77, 1.9}) {
        for (double y : {0.2, 1.2, 3.7})
            EXPECT_NEAR(g(x, y), 2.0 * x + 3.0 * y, 1e-12);
    }
}

TEST(Grid2DDeathTest, RejectsSizeMismatch)
{
    EXPECT_DEATH(Grid2D({0.0, 1.0}, {0.0, 1.0}, {1.0, 2.0, 3.0}),
                 "values size");
}

} // namespace
} // namespace dcbatt::util
