/**
 * @file
 * Statistical sanity tests for the Rng distributions. Tolerances are
 * sized for the fixed sample counts; the generator is deterministic,
 * so these never flake.
 */

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/stats.h"

namespace dcbatt::util {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniform() == b.uniform())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    RunningStats s;
    for (int i = 0; i < 20000; ++i) {
        double x = rng.uniform(2.0, 6.0);
        ASSERT_GE(x, 2.0);
        ASSERT_LT(x, 6.0);
        s.add(x);
    }
    EXPECT_NEAR(s.mean(), 4.0, 0.05);
}

TEST(Rng, UniformIntInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t x = rng.uniformInt(1, 6);
        ASSERT_GE(x, 1);
        ASSERT_LE(x, 6);
        saw_lo |= (x == 1);
        saw_hi |= (x == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(11);
    RunningStats s;
    for (int i = 0; i < 50000; ++i)
        s.add(rng.exponential(45.0));
    EXPECT_NEAR(s.mean(), 45.0, 1.0);
    // Exponential: stddev == mean.
    EXPECT_NEAR(s.stddev(), 45.0, 2.0);
    EXPECT_GE(s.min(), 0.0);
}

TEST(RngDeathTest, ExponentialRejectsNonpositiveMean)
{
    Rng rng(1);
    EXPECT_DEATH(rng.exponential(0.0), "nonpositive");
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    RunningStats s;
    for (int i = 0; i < 50000; ++i)
        s.add(rng.normal(10.0, 3.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.1);
    EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, TruncatedNormalStaysInRange)
{
    Rng rng(17);
    for (int i = 0; i < 5000; ++i) {
        double x = rng.truncatedNormal(1.0, 5.0, 0.5, 1.5);
        ASSERT_GE(x, 0.5);
        ASSERT_LE(x, 1.5);
    }
}

TEST(Rng, TruncatedNormalDegenerateRangeClamps)
{
    Rng rng(17);
    // Impossible-to-hit narrow band far from the mean: resampling
    // gives up and clamps the mean into range.
    double x = rng.truncatedNormal(100.0, 0.001, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(Rng, ChanceProbability)
{
    Rng rng(19);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, ForkedStreamsIndependent)
{
    Rng parent(23);
    Rng child1 = parent.fork();
    Rng child2 = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (child1.uniform() == child2.uniform())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(29);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto original = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, original);
}

TEST(Rng, SubstreamSeedMatchesSubstream)
{
    for (uint64_t seed : {0ULL, 7ULL, 0xdeadbeefULL}) {
        Rng parent(seed);
        for (uint64_t index : {0ULL, 1ULL, 63ULL, 1000ULL}) {
            EXPECT_EQ(parent.substream(index).seed(),
                      Rng::substreamSeed(seed, index));
        }
    }
}

// ---------------------------------------------------------------------
// CachedSeedEngine must be a drop-in for std::mt19937_64: the raw
// uint64 stream and every distribution built on it have to match bit
// for bit, including past the cached first block (312 outputs) and
// across several twist generations.
// ---------------------------------------------------------------------

TEST(CachedSeedEngine, MatchesStdMt19937_64)
{
    for (uint64_t seed :
         {0ULL, 1ULL, 42ULL, 0xdeadbeefULL, 0x9e3779b97f4a7c15ULL}) {
        std::mt19937_64 reference(seed);
        CachedSeedEngine engine(seed);
        for (int i = 0; i < 2000; ++i)
            ASSERT_EQ(engine(), reference())
                << "seed " << seed << " draw " << i;
    }
}

TEST(CachedSeedEngine, SharedBlockStreamsAreIndependent)
{
    // Two engines on the same seed share the cached block but must
    // advance independently.
    CachedSeedEngine a(77), b(77);
    std::mt19937_64 reference(77);
    uint64_t first = reference();
    EXPECT_EQ(a(), first);
    for (int i = 0; i < 500; ++i)
        a();
    EXPECT_EQ(b(), first);
}

TEST(SeededStream, MatchesRngDistributions)
{
    for (uint64_t seed : {3ULL, 0xfeedULL}) {
        Rng rng(seed);
        SeededStream stream(seed);
        for (int i = 0; i < 200; ++i) {
            ASSERT_DOUBLE_EQ(stream.exponential(45.0),
                             rng.exponential(45.0));
            ASSERT_DOUBLE_EQ(stream.normal(10.0, 3.0),
                             rng.normal(10.0, 3.0));
            ASSERT_DOUBLE_EQ(
                stream.truncatedNormal(1.0, 5.0, 0.5, 1.5),
                rng.truncatedNormal(1.0, 5.0, 0.5, 1.5));
            ASSERT_DOUBLE_EQ(stream.uniform(2.0, 6.0),
                             rng.uniform(2.0, 6.0));
        }
    }
}

TEST(SeededStream, NextRawMirrorsFork)
{
    // SeededStream(parent.nextRaw()) must equal parent.fork(): that is
    // the contract the AOR generator's per-process streams rely on.
    Rng rng_parent(91);
    SeededStream stream_parent(91);
    for (int p = 0; p < 20; ++p) {
        Rng rng_child = rng_parent.fork();
        SeededStream stream_child(stream_parent.nextRaw());
        for (int i = 0; i < 50; ++i)
            ASSERT_DOUBLE_EQ(stream_child.exponential(100.0),
                             rng_child.exponential(100.0));
    }
}

} // namespace
} // namespace dcbatt::util
