/**
 * @file
 * Unit tests for streaming statistics, percentiles, and histograms.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "util/stats.h"

namespace dcbatt::util {
namespace {

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleSample)
{
    RunningStats s;
    s.add(4.2);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.2);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 4.2);
    EXPECT_DOUBLE_EQ(s.max(), 4.2);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of the classic dataset: 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    RunningStats all, a, b;
    for (int i = 0; i < 100; ++i) {
        double x = std::sin(i * 0.7) * 10.0 + i * 0.01;
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, b;
    a.add(1.0);
    a.add(3.0);
    RunningStats before = a;
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), before.mean());
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, OrderStatistics)
{
    std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.0);
    EXPECT_DOUBLE_EQ(percentile(v, 12.5), 1.5);
}

TEST(Percentile, UnsortedInput)
{
    EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0}, 50.0), 3.0);
}

TEST(Percentile, SingleElement)
{
    EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
}

TEST(PercentileDeathTest, RejectsBadInput)
{
    EXPECT_DEATH(percentile({}, 50.0), "empty");
    EXPECT_DEATH(percentile({1.0}, -1.0), "range");
    EXPECT_DEATH(percentile({1.0}, 101.0), "range");
}

TEST(Histogram, BinsAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);   // bin 0
    h.add(3.0);   // bin 1
    h.add(9.99);  // bin 4
    h.add(-5.0);  // clamps to bin 0
    h.add(50.0);  // clamps to bin 4
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(2), 0u);
    EXPECT_EQ(h.binCount(4), 2u);
    EXPECT_DOUBLE_EQ(h.binLow(1), 2.0);
    EXPECT_DOUBLE_EQ(h.binHigh(1), 4.0);
}

TEST(HistogramDeathTest, RejectsBadRange)
{
    EXPECT_DEATH(Histogram(1.0, 1.0, 4), "invalid");
    EXPECT_DEATH(Histogram(0.0, 1.0, 0), "invalid");
}

} // namespace
} // namespace dcbatt::util
