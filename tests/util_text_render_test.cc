/**
 * @file
 * Unit tests for the text table and ASCII chart renderers, plus strf
 * and logging level plumbing.
 */

#include <gtest/gtest.h>

#include "util/ascii_chart.h"
#include "util/logging.h"
#include "util/text_table.h"

namespace dcbatt::util {
namespace {

TEST(Strf, FormatsLikePrintf)
{
    EXPECT_EQ(strf("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(strf("%.2f kW", 1.2345), "1.23 kW");
    EXPECT_EQ(strf("%s", "plain"), "plain");
    EXPECT_EQ(strf("empty"), "empty");
}

TEST(Strf, LongOutput)
{
    std::string big(500, 'x');
    EXPECT_EQ(strf("%s!", big.c_str()).size(), 501u);
}

TEST(LogLevel, SetAndGet)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    setLogLevel(before);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator exists.
    EXPECT_NE(out.find("----"), std::string::npos);
    // Column alignment: "value" header starts at the same column as
    // "1" and "22" within their respective lines.
    auto column_of = [&out](const std::string &needle) {
        size_t pos = out.find(needle);
        size_t line_start = out.rfind('\n', pos);
        line_start = line_start == std::string::npos ? 0 : line_start + 1;
        return pos - line_start;
    };
    EXPECT_EQ(column_of("value"), column_of("22"));
    EXPECT_EQ(column_of("value"), column_of("1"));
}

TEST(TextTable, NoHeader)
{
    TextTable t;
    t.addRow({"a", "b"});
    std::string out = t.render();
    EXPECT_EQ(out.find("----"), std::string::npos);
    EXPECT_NE(out.find("a"), std::string::npos);
}

TEST(TextTable, RaggedRows)
{
    TextTable t({"c1"});
    t.addRow({"a", "b", "c"});
    t.addRow({"only"});
    std::string out = t.render();
    EXPECT_NE(out.find("c"), std::string::npos);
    EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(AsciiChart, EmptyChart)
{
    EXPECT_EQ(renderChart({}, {}), "(empty chart)\n");
}

TEST(AsciiChart, PlotsGlyphsAndLegend)
{
    ChartSeries s;
    s.label = "power";
    s.glyph = '*';
    for (int i = 0; i <= 10; ++i) {
        s.xs.push_back(i);
        s.ys.push_back(i * i);
    }
    ChartOptions opt;
    opt.title = "ti tle";
    opt.xLabel = "time";
    std::string out = renderChart({s}, opt);
    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find("ti tle"), std::string::npos);
    EXPECT_NE(out.find("time"), std::string::npos);
    EXPECT_NE(out.find("* = power"), std::string::npos);
    // y-axis labels include the max value (100).
    EXPECT_NE(out.find("100"), std::string::npos);
}

TEST(AsciiChart, RespectsForcedYRange)
{
    ChartSeries s;
    s.label = "x";
    s.glyph = 'o';
    s.xs = {0.0, 1.0};
    s.ys = {0.5, 0.6};
    ChartOptions opt;
    opt.yMin = 0.0;
    opt.yMax = 10.0;
    std::string out = renderChart({s}, opt);
    EXPECT_NE(out.find("10"), std::string::npos);
}

TEST(AsciiChart, MultipleSeriesDistinctGlyphs)
{
    ChartSeries a{"up", 'u', {0, 1, 2}, {0, 1, 2}};
    ChartSeries b{"down", 'd', {0, 1, 2}, {2, 1, 0}};
    std::string out = renderChart({a, b}, {});
    EXPECT_NE(out.find('u'), std::string::npos);
    EXPECT_NE(out.find('d'), std::string::npos);
}

TEST(AsciiChart, FromTimeSeries)
{
    TimeSeries ts(Seconds(0.0), Seconds(60.0), {1000.0, 2000.0});
    ChartSeries s = seriesFromTimeSeries(ts, "load", 'x',
                                         1.0 / 60.0, 1e-3);
    ASSERT_EQ(s.xs.size(), 2u);
    EXPECT_DOUBLE_EQ(s.xs[1], 1.0);  // minutes
    EXPECT_DOUBLE_EQ(s.ys[1], 2.0);  // kilo-scaled
}

} // namespace
} // namespace dcbatt::util
