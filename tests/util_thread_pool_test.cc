/**
 * @file
 * Tests for util::ThreadPool: submit/future plumbing, exception
 * propagation through both submit() and parallelFor(), parallelFor
 * index coverage, and reuse of the pool after a full drain.
 */

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/thread_pool.h"

namespace dcbatt::util {
namespace {

TEST(ThreadPool, SubmitReturnsFutureValue)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.size(), 2u);
    auto future = pool.submit([] { return 41 + 1; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForVisitsEachIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallelFor(kN, [&hits, kN](size_t i) {
        ASSERT_LT(i, kN);
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForZeroAndOneElement)
{
    ThreadPool pool(2);
    int calls = 0;
    pool.parallelFor(0, [&calls](size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    // n == 1 runs entirely on the calling thread: no data race on
    // the unsynchronized counter.
    pool.parallelFor(1, [&calls](size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForRethrowsFirstException)
{
    ThreadPool pool(4);
    std::atomic<int> visited{0};
    EXPECT_THROW(pool.parallelFor(256,
                                  [&visited](size_t i) {
                                      visited.fetch_add(1);
                                      if (i == 17)
                                          throw std::logic_error(
                                              "index 17");
                                  }),
                 std::logic_error);
    // Abort is best-effort, but at least the throwing index ran.
    EXPECT_GE(visited.load(), 1);
}

TEST(ThreadPool, ReusableAfterDrain)
{
    ThreadPool pool(3);
    for (int round = 0; round < 5; ++round) {
        std::atomic<size_t> sum{0};
        pool.parallelFor(100, [&sum](size_t i) {
            sum.fetch_add(i, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 100u * 99u / 2u) << "round " << round;
        auto future = pool.submit([round] { return round * 2; });
        EXPECT_EQ(future.get(), round * 2);
    }
}

TEST(ThreadPool, ZeroRequestedThreadsStillWorks)
{
    // A zero-thread request is clamped to one worker.
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<int> count{0};
    pool.parallelFor(10, [&count](size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 10);
}

TEST(RngSubstream, IndependentOfParentDrawOrder)
{
    Rng a(1234);
    Rng b(1234);
    // Drain some draws from one parent only; substreams must still
    // match because they are keyed on (seed, index), not state.
    for (int i = 0; i < 100; ++i)
        b.uniform(0.0, 1.0);
    Rng sub_a = a.substream(7);
    Rng sub_b = b.substream(7);
    for (int i = 0; i < 32; ++i)
        EXPECT_DOUBLE_EQ(sub_a.uniform(0.0, 1.0),
                         sub_b.uniform(0.0, 1.0));
}

TEST(RngSubstream, DistinctIndicesDiverge)
{
    Rng rng(99);
    Rng s0 = rng.substream(0);
    Rng s1 = rng.substream(1);
    int equal = 0;
    for (int i = 0; i < 16; ++i) {
        if (s0.uniform(0.0, 1.0) == s1.uniform(0.0, 1.0))
            ++equal;
    }
    EXPECT_LT(equal, 16);
}

} // namespace
} // namespace dcbatt::util
