/**
 * @file
 * Unit tests for the fixed-step TimeSeries container.
 */

#include <gtest/gtest.h>

#include "util/time_series.h"

namespace dcbatt::util {
namespace {

TimeSeries
ramp(size_t n, double step = 1.0)
{
    TimeSeries ts(Seconds(0.0), Seconds(step));
    for (size_t i = 0; i < n; ++i)
        ts.append(static_cast<double>(i));
    return ts;
}

TEST(TimeSeries, AppendAndIndex)
{
    TimeSeries ts = ramp(5);
    EXPECT_EQ(ts.size(), 5u);
    EXPECT_FALSE(ts.empty());
    EXPECT_DOUBLE_EQ(ts[3], 3.0);
    EXPECT_DOUBLE_EQ(ts.timeAt(3).value(), 3.0);
    EXPECT_DOUBLE_EQ(ts.end().value(), 5.0);
}

TEST(TimeSeries, NonzeroStartTime)
{
    TimeSeries ts(Seconds(100.0), Seconds(3.0));
    ts.append(1.0);
    ts.append(2.0);
    EXPECT_DOUBLE_EQ(ts.timeAt(1).value(), 103.0);
    EXPECT_DOUBLE_EQ(ts.sample(Seconds(104.0)), 2.0);
    EXPECT_DOUBLE_EQ(ts.sample(Seconds(0.0)), 1.0);  // clamps low
    EXPECT_DOUBLE_EQ(ts.sample(Seconds(1e6)), 2.0);  // clamps high
}

TEST(TimeSeries, ZeroOrderHold)
{
    TimeSeries ts = ramp(4, 2.0);
    EXPECT_DOUBLE_EQ(ts.sample(Seconds(0.0)), 0.0);
    EXPECT_DOUBLE_EQ(ts.sample(Seconds(1.9)), 0.0);
    EXPECT_DOUBLE_EQ(ts.sample(Seconds(2.0)), 1.0);
    EXPECT_DOUBLE_EQ(ts.sample(Seconds(5.5)), 2.0);
}

TEST(TimeSeries, MinMaxMeanArgMax)
{
    TimeSeries ts(Seconds(0.0), Seconds(1.0), {3.0, 9.0, 1.0, 9.0});
    EXPECT_DOUBLE_EQ(ts.maxValue(), 9.0);
    EXPECT_DOUBLE_EQ(ts.minValue(), 1.0);
    EXPECT_EQ(ts.argMax(), 1u);  // first occurrence
    EXPECT_DOUBLE_EQ(ts.mean(), 5.5);
}

TEST(TimeSeries, Integral)
{
    TimeSeries ts(Seconds(0.0), Seconds(3.0), {2.0, 4.0});
    EXPECT_DOUBLE_EQ(ts.integral(), 18.0);
}

TEST(TimeSeries, ElementWiseSum)
{
    TimeSeries a(Seconds(0.0), Seconds(1.0), {1.0, 2.0});
    TimeSeries b(Seconds(0.0), Seconds(1.0), {10.0, 20.0});
    a += b;
    EXPECT_DOUBLE_EQ(a[0], 11.0);
    EXPECT_DOUBLE_EQ(a[1], 22.0);
}

TEST(TimeSeriesDeathTest, SumRejectsMismatch)
{
    TimeSeries a(Seconds(0.0), Seconds(1.0), {1.0, 2.0});
    TimeSeries b(Seconds(0.0), Seconds(2.0), {1.0, 2.0});
    EXPECT_DEATH(a += b, "incompatible");
    TimeSeries c(Seconds(0.0), Seconds(1.0), {1.0});
    EXPECT_DEATH(a += c, "incompatible");
}

TEST(TimeSeries, Slice)
{
    TimeSeries ts = ramp(10);
    TimeSeries s = ts.slice(3, 7);
    EXPECT_EQ(s.size(), 4u);
    EXPECT_DOUBLE_EQ(s[0], 3.0);
    EXPECT_DOUBLE_EQ(s.start().value(), 3.0);
}

TEST(TimeSeriesDeathTest, SliceRejectsBadRange)
{
    TimeSeries ts = ramp(4);
    EXPECT_DEATH(ts.slice(3, 2), "bad range");
    EXPECT_DEATH(ts.slice(0, 5), "bad range");
}

TEST(TimeSeries, DownsampleAverages)
{
    TimeSeries ts(Seconds(0.0), Seconds(1.0),
                  {1.0, 3.0, 5.0, 7.0, 9.0});
    TimeSeries d = ts.downsample(2);
    ASSERT_EQ(d.size(), 3u);
    EXPECT_DOUBLE_EQ(d[0], 2.0);
    EXPECT_DOUBLE_EQ(d[1], 6.0);
    EXPECT_DOUBLE_EQ(d[2], 9.0);  // trailing partial group
    EXPECT_DOUBLE_EQ(d.step().value(), 2.0);
}

TEST(TimeSeriesDeathTest, EmptySeriesPanics)
{
    TimeSeries ts;
    EXPECT_DEATH(ts.maxValue(), "empty");
    EXPECT_DEATH(ts.sample(Seconds(0.0)), "empty");
}

} // namespace
} // namespace dcbatt::util
