/**
 * @file
 * Unit tests for the strong-typed quantity system.
 */

#include <gtest/gtest.h>

#include "util/units.h"

namespace dcbatt::util {
namespace {

TEST(Units, DefaultConstructedIsZero)
{
    Watts w;
    EXPECT_EQ(w.value(), 0.0);
}

TEST(Units, AdditionAndSubtraction)
{
    Watts a(100.0), b(40.0);
    EXPECT_DOUBLE_EQ((a + b).value(), 140.0);
    EXPECT_DOUBLE_EQ((a - b).value(), 60.0);
    EXPECT_DOUBLE_EQ((-a).value(), -100.0);
}

TEST(Units, ScalarScaling)
{
    Watts a(100.0);
    EXPECT_DOUBLE_EQ((a * 2.5).value(), 250.0);
    EXPECT_DOUBLE_EQ((2.5 * a).value(), 250.0);
    EXPECT_DOUBLE_EQ((a / 4.0).value(), 25.0);
}

TEST(Units, RatioIsDimensionless)
{
    Watts a(100.0), b(50.0);
    double ratio = a / b;
    EXPECT_DOUBLE_EQ(ratio, 2.0);
}

TEST(Units, CompoundAssignment)
{
    Watts a(10.0);
    a += Watts(5.0);
    EXPECT_DOUBLE_EQ(a.value(), 15.0);
    a -= Watts(3.0);
    EXPECT_DOUBLE_EQ(a.value(), 12.0);
    a *= 2.0;
    EXPECT_DOUBLE_EQ(a.value(), 24.0);
}

TEST(Units, Comparisons)
{
    EXPECT_LT(Watts(1.0), Watts(2.0));
    EXPECT_GT(Watts(3.0), Watts(2.0));
    EXPECT_EQ(Watts(2.0), Watts(2.0));
    EXPECT_LE(Watts(2.0), Watts(2.0));
}

TEST(Units, ElectricalCrossProducts)
{
    Volts v(52.0);
    Amperes i(5.0);
    EXPECT_DOUBLE_EQ((v * i).value(), 260.0);
    EXPECT_DOUBLE_EQ((i * v).value(), 260.0);
    EXPECT_DOUBLE_EQ((Watts(260.0) / v).value(), 5.0);
    EXPECT_DOUBLE_EQ((Watts(260.0) / i).value(), 52.0);
}

TEST(Units, EnergyCrossProducts)
{
    Watts p(3300.0);
    Seconds t(90.0);
    Joules e = p * t;
    EXPECT_DOUBLE_EQ(e.value(), 297000.0);
    EXPECT_DOUBLE_EQ((e / p).value(), 90.0);
    EXPECT_DOUBLE_EQ((e / t).value(), 3300.0);
}

TEST(Units, ChargeCrossProducts)
{
    Amperes i(5.0);
    Seconds t(1200.0);
    Coulombs q = i * t;
    EXPECT_DOUBLE_EQ(q.value(), 6000.0);
    EXPECT_DOUBLE_EQ((q / i).value(), 1200.0);
    EXPECT_DOUBLE_EQ((q / t).value(), 5.0);
    EXPECT_DOUBLE_EQ((Joules(297000.0) / Volts(48.0)).value(), 6187.5);
}

TEST(Units, ScaleHelpers)
{
    EXPECT_DOUBLE_EQ(kilowatts(2.5).value(), 2500.0);
    EXPECT_DOUBLE_EQ(megawatts(2.5).value(), 2.5e6);
    EXPECT_DOUBLE_EQ(toKilowatts(Watts(1900.0)), 1.9);
    EXPECT_DOUBLE_EQ(toMegawatts(megawatts(30.0)), 30.0);
    EXPECT_DOUBLE_EQ(minutes(30.0).value(), 1800.0);
    EXPECT_DOUBLE_EQ(hours(2.0).value(), 7200.0);
    EXPECT_DOUBLE_EQ(toMinutes(Seconds(90.0)), 1.5);
    EXPECT_DOUBLE_EQ(toHours(Seconds(7200.0)), 2.0);
    EXPECT_DOUBLE_EQ(kilojoules(297.0).value(), 297000.0);
    EXPECT_DOUBLE_EQ(toKilojoules(Joules(5000.0)), 5.0);
}

TEST(Units, ClampMinMax)
{
    EXPECT_EQ(clamp(Amperes(0.5), Amperes(1.0), Amperes(5.0)),
              Amperes(1.0));
    EXPECT_EQ(clamp(Amperes(7.0), Amperes(1.0), Amperes(5.0)),
              Amperes(5.0));
    EXPECT_EQ(clamp(Amperes(3.0), Amperes(1.0), Amperes(5.0)),
              Amperes(3.0));
    EXPECT_EQ(min(Watts(1.0), Watts(2.0)), Watts(1.0));
    EXPECT_EQ(max(Watts(1.0), Watts(2.0)), Watts(2.0));
}

TEST(Units, ConstexprUsable)
{
    constexpr Watts w = kilowatts(12.6);
    static_assert(w.value() == 12600.0);
    constexpr Joules e = Watts(3300.0) * Seconds(90.0);
    static_assert(e.value() == 297000.0);
    SUCCEED();
}

} // namespace
} // namespace dcbatt::util
