#!/usr/bin/env python3
"""Compare a fresh bench_to_json.sh capture against the committed
baseline and fail on large microbenchmark regressions.

Usage: tools/bench_diff.py BASELINE.json CURRENT.json
           [--max-slowdown X] [--fail-on-missing]
           [--ratio KEY_NUM:KEY_DEN<=X ...]

Every op present in both files' ``micro_ns_per_op`` maps is compared;
an op slower than ``--max-slowdown`` (default 2.0) times its baseline
fails the check. Ops present on only one side are reported distinctly:
*missing* ops (in the baseline, gone from the capture — retired or a
build that silently dropped a benchmark) versus *new* ops (in the
capture, absent from the baseline — the baseline wants regenerating).
Neither is fatal by default, but ``--fail-on-missing`` turns missing
ops into exit 3 so CI can catch a benchmark binary that lost coverage,
and ``--fail-on-new`` does the same for new ops: an op that exists
only in the capture is *silently un-gated* — it could regress 100x on
the next change and the slowdown gate would never see it — so CI
refuses to go green until the committed baseline covers it.

When ``$GITHUB_STEP_SUMMARY`` is set (or ``--summary PATH`` is given)
the new/missing keys, regressions, and ratio-gate results are also
appended there as Markdown, so a PR author sees the coverage gap
without digging through the job log.

``--ratio`` gates a *relative* cost within the current capture alone:
``--ratio 'BM_AorSharded/1:BM_AorSerial/1000<=1.15'`` fails (exit 1)
when the first op costs more than 1.15x the second. This is how CI
pins constant-factor contracts ("sharding at one shard is free")
without depending on the absolute speed of the runner. Repeatable.

The artifact wall times are printed for context only — CI runner wall
clocks are too noisy to gate on. The generous 2x slowdown gate is
deliberate for the same reason: it catches algorithmic regressions
(the kind this repo's caching layers could silently lose), not
scheduling jitter.

Exit status: 0 clean, 1 regression (slowdown or ratio gate), 2
usage/parse error, 3 when a capture is missing the
``micro_ns_per_op`` map, a ratio key, or (with ``--fail-on-missing``)
a baseline op — distinct so CI can tell "baseline needs regenerating"
from "the code got slower".
"""

import argparse
import json
import os
import re
import sys

EXIT_REGRESSION = 1
EXIT_USAGE = 2
EXIT_MISSING_KEY = 3

_RATIO_RE = re.compile(r"^(?P<num>[^:]+):(?P<den>[^:]+)<=(?P<max>.+)$")


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_diff: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(EXIT_USAGE)
    if "micro_ns_per_op" not in doc:
        print(f"bench_diff: {path} has no micro_ns_per_op map — "
              f"regenerate it with tools/bench_to_json.sh",
              file=sys.stderr)
        sys.exit(EXIT_MISSING_KEY)
    return doc


def parse_ratio(spec):
    m = _RATIO_RE.match(spec)
    if not m:
        print(f"bench_diff: bad --ratio '{spec}' — expected "
              f"KEY_NUM:KEY_DEN<=MAX", file=sys.stderr)
        sys.exit(EXIT_USAGE)
    try:
        limit = float(m.group("max"))
    except ValueError:
        print(f"bench_diff: bad --ratio limit in '{spec}'",
              file=sys.stderr)
        sys.exit(EXIT_USAGE)
    return m.group("num").strip(), m.group("den").strip(), limit


def main():
    parser = argparse.ArgumentParser(
        description="diff two bench_to_json.sh captures")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-slowdown", type=float, default=2.0,
                        help="fail when current/baseline exceeds this "
                             "ratio for any shared op (default 2.0)")
    parser.add_argument("--fail-on-missing", action="store_true",
                        help="exit 3 when a baseline op is absent from "
                             "the current capture (default: note only)")
    parser.add_argument("--fail-on-new", action="store_true",
                        help="exit 3 when the capture has an op the "
                             "baseline lacks (an un-gated benchmark; "
                             "regenerate the baseline to cover it)")
    parser.add_argument("--summary", default="",
                        metavar="PATH",
                        help="append a Markdown report here (default: "
                             "$GITHUB_STEP_SUMMARY when set)")
    parser.add_argument("--ratio", action="append", default=[],
                        metavar="KEY_NUM:KEY_DEN<=MAX",
                        help="fail when current[KEY_NUM]/current[KEY_DEN]"
                             " exceeds MAX (repeatable; compares within "
                             "the current capture only)")
    args = parser.parse_args()

    ratio_gates = [parse_ratio(spec) for spec in args.ratio]

    base = load(args.baseline)
    curr = load(args.current)
    base_ops = base["micro_ns_per_op"]
    curr_ops = curr["micro_ns_per_op"]

    shared = sorted(set(base_ops) & set(curr_ops))
    only_base = sorted(set(base_ops) - set(curr_ops))
    only_curr = sorted(set(curr_ops) - set(base_ops))

    if not shared:
        print("bench_diff: no ops in common between baseline and "
              "current", file=sys.stderr)
        sys.exit(EXIT_MISSING_KEY)

    regressions = []
    width = max(len(op) for op in shared)
    print(f"{'op':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for op in shared:
        b, c = base_ops[op], curr_ops[op]
        ratio = c / b if b > 0 else float("inf")
        flag = ""
        if ratio > args.max_slowdown:
            regressions.append((op, ratio))
            flag = "  <-- REGRESSION"
        print(f"{op:<{width}}  {b:>12.0f}  {c:>12.0f}  "
              f"{ratio:>5.2f}x{flag}")

    for op in only_base:
        print(f"missing: {op} in baseline but absent from current "
              f"(retired, or the benchmark binary lost it)")
    for op in only_curr:
        print(f"new: {op} in current but absent from baseline "
              f"(regenerate the baseline to start gating it)")
    if only_base or only_curr:
        print(f"bench_diff: {len(only_base)} missing op(s), "
              f"{len(only_curr)} new op(s)")

    ratio_failures = []
    for num, den, limit in ratio_gates:
        absent = [k for k in (num, den) if k not in curr_ops]
        if absent:
            print(f"bench_diff: ratio gate {num}:{den} — current "
                  f"capture lacks {', '.join(absent)}", file=sys.stderr)
            sys.exit(EXIT_MISSING_KEY)
        den_ns = curr_ops[den]
        ratio = curr_ops[num] / den_ns if den_ns > 0 else float("inf")
        ok = ratio <= limit
        print(f"ratio: {num} / {den} = {ratio:.3f} "
              f"(limit {limit}){'' if ok else '  <-- FAIL'}")
        if not ok:
            ratio_failures.append((num, den, ratio, limit))

    for doc, label in ((base, "baseline"), (curr, "current")):
        walls = doc.get("artifact_wall_seconds", {})
        for artifact, times in sorted(walls.items()):
            timing = ", ".join(f"{k}={v}s"
                               for k, v in sorted(times.items()))
            print(f"wall ({label}): {artifact}: {timing}")

    summary_path = args.summary or os.environ.get(
        "GITHUB_STEP_SUMMARY", "")
    if summary_path:
        with open(summary_path, "a") as f:
            f.write("### bench_diff\n\n")
            f.write(f"{len(shared)} shared op(s), "
                    f"{len(regressions)} regression(s) beyond "
                    f"{args.max_slowdown}x, "
                    f"{len(ratio_failures)} ratio-gate failure(s)\n\n")
            if regressions:
                f.write("| regressed op | ratio |\n|---|---|\n")
                for op, ratio in regressions:
                    f.write(f"| `{op}` | {ratio:.2f}x |\n")
                f.write("\n")
            if ratio_failures:
                f.write("| ratio gate | value | limit |\n|---|---|---|\n")
                for num, den, ratio, limit in ratio_failures:
                    f.write(f"| `{num}:{den}` | {ratio:.3f} "
                            f"| {limit} |\n")
                f.write("\n")
            if only_base:
                f.write(f"**Missing from capture** ({len(only_base)} — "
                        "benchmark coverage lost?):\n")
                for op in only_base:
                    f.write(f"- `{op}`\n")
                f.write("\n")
            if only_curr:
                f.write(f"**New, un-gated ops** ({len(only_curr)} — "
                        "regenerate BENCH_perf.json with "
                        "tools/bench_to_json.sh to gate them):\n")
                for op in only_curr:
                    f.write(f"- `{op}`\n")
                f.write("\n")

    if args.fail_on_missing and only_base:
        print(f"\nbench_diff: {len(only_base)} baseline op(s) missing "
              f"from the current capture", file=sys.stderr)
        sys.exit(EXIT_MISSING_KEY)
    if args.fail_on_new and only_curr:
        print(f"\nbench_diff: {len(only_curr)} op(s) in the capture "
              f"are absent from the baseline and therefore un-gated — "
              f"regenerate BENCH_perf.json (tools/bench_to_json.sh) "
              f"so they are covered", file=sys.stderr)
        sys.exit(EXIT_MISSING_KEY)
    failed = False
    if regressions:
        failed = True
        print(f"\nbench_diff: {len(regressions)} op(s) regressed "
              f"beyond {args.max_slowdown}x:", file=sys.stderr)
        for op, ratio in regressions:
            print(f"  {op}: {ratio:.2f}x", file=sys.stderr)
    if ratio_failures:
        failed = True
        print(f"\nbench_diff: {len(ratio_failures)} ratio gate(s) "
              f"exceeded:", file=sys.stderr)
        for num, den, ratio, limit in ratio_failures:
            print(f"  {num}:{den} = {ratio:.3f} > {limit}",
                  file=sys.stderr)
    if failed:
        sys.exit(EXIT_REGRESSION)
    print(f"\nbench_diff: all {len(shared)} shared ops within "
          f"{args.max_slowdown}x of baseline"
          + (f"; {len(ratio_gates)} ratio gate(s) ok"
             if ratio_gates else ""))


if __name__ == "__main__":
    main()
