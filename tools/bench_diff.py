#!/usr/bin/env python3
"""Compare a fresh bench_to_json.sh capture against the committed
baseline and fail on large microbenchmark regressions.

Usage: tools/bench_diff.py BASELINE.json CURRENT.json [--max-slowdown X]

Every op present in both files' ``micro_ns_per_op`` maps is compared;
an op slower than ``--max-slowdown`` (default 2.0) times its baseline
fails the check. Ops present on only one side are reported but never
fatal (benchmarks get added and retired), and the artifact wall times
are printed for context only — CI runner wall clocks are too noisy to
gate on. The generous 2x gate is deliberate for the same reason: it
catches algorithmic regressions (the kind this repo's caching layers
could silently lose), not scheduling jitter.

Exit status: 0 clean, 1 regression, 2 usage/parse error, 3 when a
capture is missing the ``micro_ns_per_op`` map (e.g. a stale or
hand-edited baseline) — distinct so CI can tell "baseline needs
regenerating" from "the code got slower".
"""

import argparse
import json
import sys

EXIT_REGRESSION = 1
EXIT_USAGE = 2
EXIT_MISSING_KEY = 3


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_diff: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(EXIT_USAGE)
    if "micro_ns_per_op" not in doc:
        print(f"bench_diff: {path} has no micro_ns_per_op map — "
              f"regenerate it with tools/bench_to_json.sh",
              file=sys.stderr)
        sys.exit(EXIT_MISSING_KEY)
    return doc


def main():
    parser = argparse.ArgumentParser(
        description="diff two bench_to_json.sh captures")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-slowdown", type=float, default=2.0,
                        help="fail when current/baseline exceeds this "
                             "ratio for any shared op (default 2.0)")
    args = parser.parse_args()

    base = load(args.baseline)
    curr = load(args.current)
    base_ops = base["micro_ns_per_op"]
    curr_ops = curr["micro_ns_per_op"]

    shared = sorted(set(base_ops) & set(curr_ops))
    only_base = sorted(set(base_ops) - set(curr_ops))
    only_curr = sorted(set(curr_ops) - set(base_ops))

    if not shared:
        print("bench_diff: no ops in common between baseline and "
              "current", file=sys.stderr)
        sys.exit(EXIT_MISSING_KEY)

    regressions = []
    width = max(len(op) for op in shared)
    print(f"{'op':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for op in shared:
        b, c = base_ops[op], curr_ops[op]
        ratio = c / b if b > 0 else float("inf")
        flag = ""
        if ratio > args.max_slowdown:
            regressions.append((op, ratio))
            flag = "  <-- REGRESSION"
        print(f"{op:<{width}}  {b:>12.0f}  {c:>12.0f}  "
              f"{ratio:>5.2f}x{flag}")

    for op in only_base:
        print(f"note: {op} only in baseline (retired?)")
    for op in only_curr:
        print(f"note: {op} only in current (new benchmark)")

    for doc, label in ((base, "baseline"), (curr, "current")):
        walls = doc.get("artifact_wall_seconds", {})
        for artifact, times in sorted(walls.items()):
            timing = ", ".join(f"{k}={v}s"
                               for k, v in sorted(times.items()))
            print(f"wall ({label}): {artifact}: {timing}")

    if regressions:
        print(f"\nbench_diff: {len(regressions)} op(s) regressed "
              f"beyond {args.max_slowdown}x:", file=sys.stderr)
        for op, ratio in regressions:
            print(f"  {op}: {ratio:.2f}x", file=sys.stderr)
        sys.exit(EXIT_REGRESSION)
    print(f"\nbench_diff: all {len(shared)} shared ops within "
          f"{args.max_slowdown}x of baseline")


if __name__ == "__main__":
    main()
