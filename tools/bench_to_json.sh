#!/usr/bin/env bash
#
# bench_to_json.sh — capture the repo's performance baseline as JSON.
#
# Runs the google-benchmark microbenchmarks (ns/op) plus wall-clock
# timings of the two heaviest figure artifacts at 1 and N worker
# threads, and merges everything into one JSON document.
#
# Reproduce the committed baseline with:
#
#   cmake --preset release && cmake --build build-release -j
#   tools/bench_to_json.sh build-release BENCH_perf.json
#
# Usage: tools/bench_to_json.sh [BUILD_DIR] [OUTPUT_JSON] [THREADS]
#   BUILD_DIR    defaults to build-release (fall back to build)
#   OUTPUT_JSON  defaults to BENCH_perf.json
#   THREADS      defaults to the machine's hardware concurrency
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build-release}
[ -d "$BUILD_DIR" ] || BUILD_DIR=build
OUT=${2:-BENCH_perf.json}
THREADS=${3:-$(nproc)}

MICRO="$BUILD_DIR/bench/micro_policies"
FIG09A="$BUILD_DIR/bench/fig09a_aor_vs_charge_time"
FIG13="$BUILD_DIR/bench/fig13_charging_comparison"
REGION="$BUILD_DIR/bench/region_scale"
for bin in "$MICRO" "$FIG09A" "$FIG13" "$REGION"; do
    if [ ! -x "$bin" ]; then
        echo "error: $bin not built (build $BUILD_DIR first)" >&2
        exit 1
    fi
done

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# Three repetitions, median kept: single-shot numbers on a loaded
# build host swing +/-10% and trip the CI ratio gate spuriously.
echo "[bench_to_json] micro_policies (google-benchmark)..." >&2
"$MICRO" --benchmark_format=json \
    --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true \
    --benchmark_out="$TMP/micro.json" \
    --benchmark_out_format=json >&2

# Wall-clock one artifact run; prints seconds with ms resolution.
wall() {
    local start end
    start=$(date +%s%N)
    "$@" > /dev/null 2> /dev/null
    end=$(date +%s%N)
    awk -v s="$start" -v e="$end" 'BEGIN { printf "%.3f", (e - s) / 1e9 }'
}

echo "[bench_to_json] fig09a wall time (1 vs $THREADS threads)..." >&2
F9_T1=$(wall "$FIG09A" --threads 1)
F9_TN=$(wall "$FIG09A" --threads "$THREADS")
echo "[bench_to_json] fig13 wall time (1 vs $THREADS threads)..." >&2
F13_T1=$(wall "$FIG13" --threads 1)
F13_TN=$(wall "$FIG13" --threads "$THREADS")

# Region-scale benchmark: the binary times itself (1 vs THREADS
# workers), checks determinism, and reports wall/RSS/efficiency in a
# JSON side file merged below. Gated by check_region_scaling.py in CI.
echo "[bench_to_json] region_scale (1 vs $THREADS threads)..." >&2
"$REGION" --threads "$THREADS" --perf-json "$TMP/region.json" \
    > /dev/null 2> /dev/null

python3 - "$TMP/micro.json" "$OUT" "$TMP/region.json" <<EOF
import json, platform, sys

with open(sys.argv[1]) as f:
    micro = json.load(f)
with open(sys.argv[3]) as f:
    region = json.load(f)

# Repetition aggregates are named "<bench>_median"; fall back to the
# raw iteration rows if the benchmark binary emitted no aggregates.
rows = [(b["name"][: -len("_median")], b)
        for b in micro["benchmarks"] if b["name"].endswith("_median")]
if not rows:
    rows = [(b["name"], b) for b in micro["benchmarks"]
            if b.get("run_type", "iteration") == "iteration"]

doc = {
    "schema": "dcbatt-bench-v1",
    "host": {
        "machine": platform.machine(),
        "hardware_threads": $(nproc),
        "build_dir": "$BUILD_DIR",
    },
    "micro_ns_per_op": {
        name: b["real_time"] * {"ns": 1, "us": 1e3, "ms": 1e6,
                                "s": 1e9}[b["time_unit"]]
        for name, b in rows
    },
    "artifact_wall_seconds": {
        "fig09a_aor_vs_charge_time": {"threads_1": $F9_T1,
                                      "threads_$THREADS": $F9_TN},
        "fig13_charging_comparison": {"threads_1": $F13_T1,
                                      "threads_$THREADS": $F13_TN},
    },
    "region_scale": region,
}

with open(sys.argv[2], "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"[bench_to_json] wrote {sys.argv[2]}", file=sys.stderr)
EOF
