#!/usr/bin/env python3
"""Validate a dcbatt event-log JSONL file (schema dcbatt-events-v1).

Checks, in order:
  - line 1 is a header object with schema/events/dropped, and the
    schema tag is known;
  - the header's event count matches the number of body lines;
  - every body line is a JSON object carrying the envelope keys
    scope (str), seq (int >= 0), t_s (number), type (non-empty str);
  - payload values are numbers or strings only (no nesting);
  - within each scope, seq values are strictly increasing and the
    lines appear in (scope, seq) merge order.

Usage: tools/check_events_schema.py EVENTS.jsonl [...]
Exit codes: 0 all files valid, 1 any violation.
"""

import json
import sys

KNOWN_SCHEMAS = {"dcbatt-events-v1"}
ENVELOPE = {"scope": str, "seq": int, "t_s": (int, float), "type": str}


def check_file(path):
    errors = []

    def err(line_no, msg):
        errors.append(f"{path}:{line_no}: {msg}")

    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines:
        err(1, "empty file (expected a header line)")
        return errors

    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        err(1, f"header is not valid JSON: {exc}")
        return errors
    if not isinstance(header, dict):
        err(1, "header is not a JSON object")
        return errors
    schema = header.get("schema")
    if schema not in KNOWN_SCHEMAS:
        err(1, f"unknown schema {schema!r} (known: "
            f"{sorted(KNOWN_SCHEMAS)})")
    for key in ("events", "dropped"):
        if not isinstance(header.get(key), int) or header[key] < 0:
            err(1, f"header field {key!r} must be a non-negative "
                f"integer, got {header.get(key)!r}")

    body = [line for line in lines[1:] if line]
    if isinstance(header.get("events"), int) and \
            header["events"] != len(body):
        err(1, f"header says {header['events']} events but the file "
            f"has {len(body)} body lines")

    last_key = None   # (scope, seq) of the previous line
    for i, line in enumerate(body, start=2):
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            err(i, f"not valid JSON: {exc}")
            continue
        if not isinstance(event, dict):
            err(i, "event is not a JSON object")
            continue
        bad = False
        for key, expected in ENVELOPE.items():
            value = event.get(key)
            if not isinstance(value, expected) or \
                    isinstance(value, bool):
                err(i, f"envelope field {key!r} missing or wrong "
                    f"type: {value!r}")
                bad = True
        if bad:
            continue
        if not event["type"]:
            err(i, "empty event type")
        if event["seq"] < 0:
            err(i, f"negative seq {event['seq']}")
        for key, value in event.items():
            if key in ENVELOPE:
                continue
            if isinstance(value, bool) or \
                    not isinstance(value, (int, float, str)):
                err(i, f"payload field {key!r} must be a number or "
                    f"string, got {type(value).__name__}")
        key = (event["scope"], event["seq"])
        if last_key is not None and key <= last_key:
            err(i, f"line out of (scope, seq) merge order: "
                f"{key} after {last_key}")
        last_key = key
    return errors


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    failed = False
    for path in sys.argv[1:]:
        errors = check_file(path)
        if errors:
            failed = True
            for error in errors:
                print(error, file=sys.stderr)
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
