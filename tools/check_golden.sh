#!/usr/bin/env bash
# Golden-artifact gate: regenerate the five figure artifacts that CI
# pins and diff them against tests/golden/. Every run is --threads 1;
# the artifacts are deterministic, so any diff is a real behavioural
# change, not noise.
#
# Usage: tools/check_golden.sh [--build-dir DIR] [--update]
#   --build-dir DIR  where the bench binaries live (default: build)
#   --update         rewrite tests/golden/ from the current binaries
#                    instead of diffing (use after an intentional
#                    output change; commit the result)
#
# Exits nonzero if a binary is missing, fails to run, or its output
# differs from the committed golden copy.

set -u -o pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
UPDATE=0
while [ "$#" -gt 0 ]; do
    case "$1" in
      --build-dir) BUILD_DIR=$2; shift 2 ;;
      --update) UPDATE=1; shift ;;
      *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
done

GOLDEN_DIR=tests/golden

# name:extra-args — fig09a gets a short horizon so the gate stays
# fast; the full-horizon run is the bench's own business.
ARTIFACTS=(
    "fig09a_aor_vs_charge_time:--years 2000"
    "fig13_charging_comparison:"
    "fig14_sla_vs_power_limit:"
    "fig15_priority_distributions:"
    "ablation_ordering:"
)

FAILURES=()
for spec in "${ARTIFACTS[@]}"; do
    name=${spec%%:*}
    extra=${spec#*:}
    binary=$BUILD_DIR/bench/$name
    golden=$GOLDEN_DIR/$name.txt
    if [ ! -x "$binary" ]; then
        echo "MISSING  $binary (build the '$BUILD_DIR' tree first)" >&2
        FAILURES+=("$name: binary missing")
        continue
    fi
    # shellcheck disable=SC2086  # $extra is intentionally word-split
    if ! "$binary" --threads 1 $extra > "/tmp/golden_$name.txt" \
            2> "/tmp/golden_$name.stderr"; then
        echo "RUNFAIL  $name" >&2
        sed 's/^/    /' "/tmp/golden_$name.stderr" >&2
        FAILURES+=("$name: run failed")
        continue
    fi
    if [ "$UPDATE" -eq 1 ]; then
        mkdir -p "$GOLDEN_DIR"
        cp "/tmp/golden_$name.txt" "$golden"
        echo "UPDATED  $golden"
    elif [ ! -f "$golden" ]; then
        echo "MISSING  $golden (run with --update to create)" >&2
        FAILURES+=("$name: golden missing")
    elif ! diff -u "$golden" "/tmp/golden_$name.txt" \
            > "/tmp/golden_$name.diff"; then
        echo "DIFF     $name (first 20 lines of the unified diff;" \
             "full diff: /tmp/golden_$name.diff)" >&2
        head -n 20 "/tmp/golden_$name.diff" >&2
        diff_lines=$(wc -l < "/tmp/golden_$name.diff")
        if [ "$diff_lines" -gt 20 ]; then
            echo "    ... ($((diff_lines - 20)) more diff lines)" >&2
        fi
        FAILURES+=("$name: output changed")
    else
        echo "OK       $name"
    fi
done

if [ "${#FAILURES[@]}" -gt 0 ]; then
    echo
    echo "Golden-artifact check FAILED:" >&2
    printf '  %s\n' "${FAILURES[@]}" >&2
    echo "If the change is intentional:" \
         "tools/check_golden.sh --update && git add tests/golden" >&2
    exit 1
fi
[ "$UPDATE" -eq 1 ] || echo "All golden artifacts match."
