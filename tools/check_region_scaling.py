#!/usr/bin/env python3
"""Gate the region engine's thread-scaling efficiency and memory bound.

Reads the ``region_scale`` section of BENCH_perf.json (written by
bench/region_scale via tools/bench_to_json.sh, or a raw --perf-json
side file passed directly) and fails when:

  * the N-thread scaling efficiency falls below the committed floor
    (efficiency = speedup / usable_cores, where usable_cores =
    min(threads, --cores)); or
  * peak RSS exceeds the bound implied by --max-rss-mib (if given).

The floor is deliberately conservative: the per-MSB shards share a
coordination barrier once per simulated minute, so perfect linearity
is impossible, but a healthy build clears 0.55 at 8 threads on an
8-core runner with room to spare. On boxes with fewer cores than
threads (including the 1-core CI fallback), efficiency normalizes by
the core count, so oversubscribing threads does not fail the gate.

Usage:
  tools/check_region_scaling.py [BENCH_perf.json]
      [--floor 0.55] [--cores N] [--max-rss-mib MB] [--summary PATH]

--summary appends a Markdown table (for $GITHUB_STEP_SUMMARY).
Exit codes: 0 ok, 1 gate failed, 2 input missing/malformed.
"""

import argparse
import json
import os
import sys


def fail(msg: str) -> None:
    print(f"check_region_scaling: FAIL: {msg}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", nargs="?", default="BENCH_perf.json")
    parser.add_argument("--floor", type=float, default=0.55,
                        help="minimum scaling efficiency (default 0.55)")
    parser.add_argument("--cores", type=int, default=0,
                        help="physical cores available (default: "
                             "hardware_threads recorded in the JSON, "
                             "else os.cpu_count())")
    parser.add_argument("--max-rss-mib", type=float, default=0.0,
                        help="fail if peak RSS exceeds this (0 = off)")
    parser.add_argument("--summary", default="",
                        help="append a Markdown summary table here")
    args = parser.parse_args()

    try:
        with open(args.bench_json) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {args.bench_json}: {e}")
        return 2

    # Accept either the merged BENCH_perf.json or a raw region side
    # file from `region_scale --perf-json`.
    region = doc.get("region_scale", doc)
    required = ("wall_seconds", "threads", "scaling_efficiency",
                "peak_rss_mib")
    missing = [k for k in required if k not in region]
    if missing:
        fail(f"{args.bench_json} has no region_scale data "
             f"(missing {', '.join(missing)}); "
             "regenerate with tools/bench_to_json.sh")
        return 2

    threads = int(region["threads"])
    cores = args.cores or int(region.get("hardware_threads", 0)) \
        or os.cpu_count() or 1
    walls = region["wall_seconds"]
    wall_1 = float(walls.get("threads_1", 0.0))
    wall_n = float(walls.get(f"threads_{threads}", 0.0))
    speedup = wall_1 / wall_n if wall_n > 0 else 0.0
    usable = max(1, min(threads, cores))
    efficiency = speedup / usable
    rss = float(region["peak_rss_mib"])

    rows = [
        ("MSBs x racks",
         f"{region.get('msbs', '?')} x {region.get('racks', '?')}"),
        ("wall threads=1", f"{wall_1:.2f} s"),
        (f"wall threads={threads}", f"{wall_n:.2f} s"),
        ("speedup", f"{speedup:.2f}x"),
        (f"efficiency (/{usable} usable cores)", f"{efficiency:.2f}"),
        ("efficiency floor", f"{args.floor:.2f}"),
        ("peak RSS", f"{rss:.1f} MiB"),
    ]
    for name, value in rows:
        print(f"  {name:<34} {value}")

    if args.summary:
        with open(args.summary, "a") as f:
            f.write("### Region thread-scaling gate\n\n")
            f.write("| metric | value |\n|---|---|\n")
            for name, value in rows:
                f.write(f"| {name} | {value} |\n")
            f.write("\n")

    ok = True
    if efficiency < args.floor:
        fail(f"scaling efficiency {efficiency:.2f} below the "
             f"committed floor {args.floor:.2f} "
             f"(speedup {speedup:.2f}x over {usable} usable cores)")
        ok = False
    if args.max_rss_mib > 0 and rss > args.max_rss_mib:
        fail(f"peak RSS {rss:.1f} MiB exceeds bound "
             f"{args.max_rss_mib:.1f} MiB — streaming window "
             "eviction may be broken")
        ok = False
    if ok:
        print("check_region_scaling: OK")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
