/**
 * @file
 * dcbatt_region — command-line driver for the region-scale simulator.
 *
 * Runs a full region (default: 50 MSBs / 15,000 racks for one
 * simulated day) through sim::runRegion and prints a region summary
 * plus a per-MSB outcome table. Stdout is a deterministic artifact:
 * byte-identical at any --threads value and between the sharded and
 * --single-queue execution modes, which is exactly what the CI
 * region-smoke job and the differential tests diff. Anything
 * execution-dependent (mode, thread count, wall time) goes to stderr.
 *
 *   dcbatt_region                         # the 50-MSB reference day
 *   dcbatt_region --msbs 4 --racks-per-msb 300 --duration-hours 6 \
 *                 --first-outage-hours 1 --threads 8
 *
 * Flags (all optional):
 *   --msbs N               MSB count                    (default 50)
 *   --racks-per-msb N      racks per MSB                (default 300)
 *   --buildings N          buildings in the region      (default 1)
 *   --suites-per-building N                             (default 4)
 *   --budget-mw X          region power budget (default: 85% of the
 *                          summed MSB breaker ratings)
 *   --suite-limit-mw X     per-suite feeder cap  (default: none)
 *   --building-limit-mw X  per-building feeder cap (default: none)
 *   --mean-mw-per-msb X    per-MSB mean IT load         (default 2.0)
 *   --duration-hours X     simulated time               (default 24)
 *   --coordination-seconds X  budget-split cadence      (default 60)
 *   --physics-step X       physics dt in seconds        (default 1.0)
 *   --first-outage-hours X staggered outage campaign start (def. 2)
 *   --stagger-seconds X    per-MSB outage stagger       (default 600)
 *   --dod X                target mean DOD              (default 0.5)
 *   --ot-seconds X         explicit open-transition length
 *   --seed N               region seed                  (default 42)
 *   --threads N            worker threads (execution knob only;
 *                          artifacts are identical)     (default 1)
 *   --single-queue         reference mode: all shards on one event
 *                          queue (same artifacts, no parallelism)
 *   --window-samples N     streaming-trace window size  (default 1200)
 *   --resident-windows N   resident-window cap          (default 2)
 *   --audit-seconds X      per-MSB physical-invariant audit cadence
 *   --rollup-csv PATH      write the region rollup tape as CSV
 *   --metrics-json PATH    deterministic metrics snapshot
 *   --trace-out PATH       Chrome trace of wall-clock spans
 *   --timeseries-out PATH  flight-recorder tape (region rollup probes)
 *   --timeseries-cadence SECS / --timeseries-mode decimate|ring
 *   --events-out PATH      structured event log (JSONL)
 *   --crash-dir DIR        post-mortem crash bundle directory
 *   --verbose              debug logging on stderr
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/chrome_trace_writer.h"
#include "obs/crash_bundle.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/time_series_recorder.h"
#include "power/region_spec.h"
#include "sim/region_engine.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/text_table.h"

using namespace dcbatt;

namespace {

struct CliOptions
{
    power::RegionSpec spec;
    unsigned threads = 1;
    bool singleQueue = false;
    std::string rollupCsvPath;
    std::string metricsJsonPath;
    std::string traceOutPath;
    std::string timeSeriesOutPath;
    double timeSeriesCadence = 60.0;
    std::string timeSeriesMode = "decimate";
    std::string eventsOutPath;
    std::string crashDirPath;
    bool verbose = false;
};

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions options;
    power::RegionSpec &spec = options.spec;
    auto need_value = [&](int i) -> const char * {
        if (i + 1 >= argc)
            util::fatal(util::strf("flag %s needs a value", argv[i]));
        return argv[i + 1];
    };
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        if (flag == "--msbs") {
            spec.msbs = std::atoi(need_value(i++));
        } else if (flag == "--racks-per-msb") {
            spec.racksPerMsb = std::atoi(need_value(i++));
        } else if (flag == "--buildings") {
            spec.buildings = std::atoi(need_value(i++));
        } else if (flag == "--suites-per-building") {
            spec.suitesPerBuilding = std::atoi(need_value(i++));
        } else if (flag == "--budget-mw") {
            spec.regionBudget =
                util::megawatts(std::atof(need_value(i++)));
        } else if (flag == "--suite-limit-mw") {
            spec.suiteLimit =
                util::megawatts(std::atof(need_value(i++)));
        } else if (flag == "--building-limit-mw") {
            spec.buildingLimit =
                util::megawatts(std::atof(need_value(i++)));
        } else if (flag == "--mean-mw-per-msb") {
            spec.msbAggregateMean =
                util::megawatts(std::atof(need_value(i++)));
            spec.msbAggregateAmplitude = spec.msbAggregateMean * 0.075;
        } else if (flag == "--duration-hours") {
            spec.duration = util::hours(std::atof(need_value(i++)));
        } else if (flag == "--coordination-seconds") {
            spec.coordinationPeriod =
                util::Seconds(std::atof(need_value(i++)));
        } else if (flag == "--physics-step") {
            spec.physicsStep =
                util::Seconds(std::atof(need_value(i++)));
        } else if (flag == "--first-outage-hours") {
            spec.firstOutage = util::hours(std::atof(need_value(i++)));
        } else if (flag == "--stagger-seconds") {
            spec.outageStagger =
                util::Seconds(std::atof(need_value(i++)));
        } else if (flag == "--dod") {
            spec.targetMeanDod = std::atof(need_value(i++));
        } else if (flag == "--ot-seconds") {
            spec.openTransitionLength =
                util::Seconds(std::atof(need_value(i++)));
        } else if (flag == "--seed") {
            spec.seed =
                static_cast<uint64_t>(std::atoll(need_value(i++)));
        } else if (flag == "--threads") {
            int threads = std::atoi(need_value(i++));
            if (threads <= 0)
                util::fatal("--threads must be >= 1");
            options.threads = static_cast<unsigned>(threads);
        } else if (flag == "--single-queue") {
            options.singleQueue = true;
        } else if (flag == "--window-samples") {
            spec.windowSamples =
                static_cast<size_t>(std::atoll(need_value(i++)));
        } else if (flag == "--resident-windows") {
            spec.maxResidentWindows =
                static_cast<size_t>(std::atoll(need_value(i++)));
        } else if (flag == "--audit-seconds") {
            double audit = std::atof(need_value(i++));
            if (audit <= 0.0)
                util::fatal("--audit-seconds must be positive");
            spec.auditInterval = util::Seconds(audit);
        } else if (flag == "--rollup-csv") {
            options.rollupCsvPath = need_value(i++);
        } else if (flag == "--metrics-json") {
            options.metricsJsonPath = need_value(i++);
        } else if (flag == "--trace-out") {
            options.traceOutPath = need_value(i++);
        } else if (flag == "--timeseries-out") {
            options.timeSeriesOutPath = need_value(i++);
        } else if (flag == "--timeseries-cadence") {
            options.timeSeriesCadence = std::atof(need_value(i++));
            if (options.timeSeriesCadence <= 0.0)
                util::fatal("--timeseries-cadence must be positive");
        } else if (flag == "--timeseries-mode") {
            options.timeSeriesMode = need_value(i++);
            if (options.timeSeriesMode != "decimate"
                && options.timeSeriesMode != "ring")
                util::fatal(
                    "--timeseries-mode must be decimate or ring");
        } else if (flag == "--events-out") {
            options.eventsOutPath = need_value(i++);
        } else if (flag == "--crash-dir") {
            options.crashDirPath = need_value(i++);
        } else if (flag == "--verbose") {
            options.verbose = true;
        } else if (flag == "--help" || flag == "-h") {
            std::printf("see the header comment of "
                        "tools/dcbatt_region.cc for the flag list\n");
            std::exit(0);
        } else {
            util::fatal(util::strf("unknown flag: %s (try --help)",
                                   flag.c_str()));
        }
    }
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions options = parseArgs(argc, argv);
    if (options.verbose)
        util::setLogLevel(util::LogLevel::Debug);
    if (!options.traceOutPath.empty())
        obs::setTracingEnabled(true);
    if (!options.timeSeriesOutPath.empty()) {
        obs::TimeSeriesOptions ts;
        ts.cadenceSeconds = options.timeSeriesCadence;
        ts.bound = options.timeSeriesMode == "ring"
            ? obs::TimeSeriesBound::Ring
            : obs::TimeSeriesBound::Decimate;
        obs::armTimeSeries(ts);
    }
    if (!options.eventsOutPath.empty())
        obs::setEventLoggingEnabled(true);
    std::string crash_dir = options.crashDirPath;
    if (crash_dir.empty()) {
        if (const char *env = std::getenv("DCBATT_CRASH_DIR"))
            crash_dir = env;
    }
    if (!crash_dir.empty())
        obs::setCrashBundleDir(crash_dir);

    const power::RegionSpec &spec = options.spec;
    sim::RegionRunOptions run;
    run.threads = options.threads;
    run.singleQueue = options.singleQueue;
    // Execution knobs are stderr-only: stdout must be byte-identical
    // across --threads and execution modes (the CI smoke diff).
    std::fprintf(stderr, "dcbatt_region: %s mode, %u thread(s)\n",
                 options.singleQueue ? "single-queue" : "sharded",
                 options.threads);

    sim::RegionResult result = sim::runRegion(spec, run);

    std::printf("dcbatt_region: %d MSBs / %d racks, budget %.1f MW "
                "(%d buildings x %d suites)\n",
                spec.msbs, result.racksTotal(),
                util::toMegawatts(power::effectiveRegionBudget(spec)),
                spec.buildings, spec.suitesPerBuilding);
    std::printf("simulated %.1f h, coordination every %.0f s, "
                "physics dt %.1f s\n\n",
                spec.duration.value() / 3600.0,
                spec.coordinationPeriod.value(),
                spec.physicsStep.value());

    int tripped = 0, outages = 0, capped = 0, held = 0;
    int overload_steps = 0;
    std::array<int, 3> sla_met{0, 0, 0};
    std::array<int, 3> racks_by_pri{0, 0, 0};
    uint64_t windows = 0, refetches = 0, evictions = 0;
    for (const sim::RegionMsbOutcome &msb : result.msbs) {
        tripped += msb.breakerTripped ? 1 : 0;
        outages += msb.outages;
        capped += msb.everCapped;
        held += msb.everHeld;
        overload_steps += msb.overloadSteps;
        for (size_t p = 0; p < 3; ++p) {
            sla_met[p] += msb.slaMetByPriority[p];
            racks_by_pri[p] += msb.racksByPriority[p];
        }
        windows += msb.traceWindowsGenerated;
        refetches += msb.traceRefetches;
        evictions += msb.traceEvictions;
    }

    util::TextTable summary({"metric", "value"});
    summary.addRow({"peak region power",
                    util::strf("%.3f MW", result.peakRegionMw)});
    summary.addRow({"coordination ticks",
                    util::strf("%llu",
                               static_cast<unsigned long long>(
                                   result.coordinationTicks))});
    summary.addRow({"budget audits",
                    util::strf("%llu",
                               static_cast<unsigned long long>(
                                   result.budgetAudits))});
    if (spec.auditInterval) {
        summary.addRow(
            {"physical-invariant audits",
             util::strf("%llu", static_cast<unsigned long long>(
                                    result.physicalAudits))});
    }
    summary.addRow({"breakers tripped", util::strf("%d", tripped)});
    summary.addRow(
        {"MSB-seconds above breaker rating",
         util::strf("%d", overload_steps)});
    for (size_t p = 0; p < 3; ++p) {
        summary.addRow({util::strf("P%zu SLAs met", p + 1),
                        util::strf("%d / %d", sla_met[p],
                                   racks_by_pri[p])});
    }
    summary.addRow({"racks with battery-exhaustion outage",
                    util::strf("%d", outages)});
    summary.addRow({"racks ever capped", util::strf("%d", capped)});
    summary.addRow({"racks ever postponed", util::strf("%d", held)});
    summary.addRow(
        {"trace windows generated (refetch/evict)",
         util::strf("%llu (%llu / %llu)",
                    static_cast<unsigned long long>(windows),
                    static_cast<unsigned long long>(refetches),
                    static_cast<unsigned long long>(evictions))});
    summary.addRow(
        {"peak resident trace bytes (all shards)",
         util::strf("%.1f MiB",
                    static_cast<double>(
                        result.tracePeakResidentBytes)
                        / (1024.0 * 1024.0))});
    std::printf("%s\n", summary.render().c_str());

    util::TextTable table({"msb", "peak MW", "grant MW (min/mean/max)",
                           "P1 met", "P2 met", "P3 met", "outage",
                           "capped", "held"});
    for (const sim::RegionMsbOutcome &msb : result.msbs) {
        table.addRow(
            {util::strf("%03d", msb.msbIndex),
             util::strf("%.3f", msb.peakMw),
             util::strf("%.2f / %.2f / %.2f", msb.minGrantMw,
                        msb.meanGrantMw, msb.maxGrantMw),
             util::strf("%d/%d", msb.slaMetByPriority[0],
                        msb.racksByPriority[0]),
             util::strf("%d/%d", msb.slaMetByPriority[1],
                        msb.racksByPriority[1]),
             util::strf("%d/%d", msb.slaMetByPriority[2],
                        msb.racksByPriority[2]),
             util::strf("%d", msb.outages),
             util::strf("%d", msb.everCapped),
             util::strf("%d", msb.everHeld)});
    }
    std::printf("%s", table.render().c_str());

    if (!options.rollupCsvPath.empty()) {
        std::vector<std::vector<std::string>> rows;
        rows.push_back({"time_s", "region_mw", "it_mw", "demand_it_mw",
                        "recharge_mw", "cap_mw", "grant_mw",
                        "unmet_mw"});
        for (size_t i = 0; i < result.regionPowerMw.size(); ++i) {
            rows.push_back({
                util::strf("%.0f",
                           result.regionPowerMw.timeAt(i).value()),
                util::strf("%.4f", result.regionPowerMw[i]),
                util::strf("%.4f", result.itMw[i]),
                util::strf("%.4f", result.demandItMw[i]),
                util::strf("%.4f", result.rechargeMw[i]),
                util::strf("%.4f", result.capMw[i]),
                util::strf("%.4f", result.grantMw[i]),
                util::strf("%.4f", result.unmetMw[i]),
            });
        }
        util::writeCsvFile(options.rollupCsvPath, rows);
        std::fprintf(stderr, "rollup tape: %s\n",
                     options.rollupCsvPath.c_str());
    }

    // Side channels: stdout stays identical with or without them.
    if (!options.metricsJsonPath.empty()) {
        obs::writeMetricsJson(options.metricsJsonPath);
        std::fprintf(stderr, "metrics snapshot: %s\n",
                     options.metricsJsonPath.c_str());
    }
    if (!options.traceOutPath.empty()) {
        obs::writeChromeTrace(options.traceOutPath);
        std::fprintf(stderr, "chrome trace: %s\n",
                     options.traceOutPath.c_str());
    }
    if (!options.timeSeriesOutPath.empty()) {
        obs::writeTimeSeries(options.timeSeriesOutPath);
        std::fprintf(stderr, "time series: %s\n",
                     options.timeSeriesOutPath.c_str());
    }
    if (!options.eventsOutPath.empty()) {
        obs::writeEventsJsonl(options.eventsOutPath);
        std::fprintf(stderr, "event log: %s\n",
                     options.eventsOutPath.c_str());
    }
    return tripped > 0 ? 2 : 0;
}
