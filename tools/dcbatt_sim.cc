/**
 * @file
 * dcbatt_sim — command-line driver for the charging-event simulator.
 *
 * Runs one charging event (the paper's Section V-B experiment) with
 * everything configurable from flags, and prints the outcome as a
 * table plus an optional CSV of the power series. This is the
 * "try your own scenario" entry point of the repo:
 *
 *   dcbatt_sim --policy priority-aware --limit-mw 2.3 --dod 0.5
 *   dcbatt_sim --policy original --racks 100 --ot-seconds 60 \
 *              --csv out.csv
 *
 * Flags (all optional):
 *   --policy original|variable|global|priority-aware   (default pa)
 *   --racks N          fleet size                      (default 316)
 *   --p1 N --p2 N --p3 N  priority counts (default paper's 89/142/85,
 *                       scaled when --racks differs)
 *   --limit-mw X[,Y,...]  MSB power limit(s); several, comma-
 *                      separated, sweep in parallel    (default 2.5)
 *   --mean-mw X        fleet mean IT load              (default 2.0)
 *   --dod X            target mean DOD                 (default 0.5)
 *   --ot-seconds X     explicit open-transition length
 *   --postpone         enable the postponement extension
 *   --restore          enable restore-on-headroom
 *   --seed N           trace seed                      (default 42)
 *   --threads N        worker threads for multi-limit sweeps
 *                      (default: hardware concurrency)
 *   --audit-seconds X  audit the physical invariants every X sim
 *                      seconds (a violation aborts the run)
 *   --csv PATH         write time,msb,it,recharge,cap series
 *                      (single-limit runs only)
 *   --metrics-json PATH  write the deterministic metrics snapshot
 *                      (counters/histograms; identical at any
 *                      --threads value)
 *   --trace-out PATH   record wall-clock spans and write a Chrome
 *                      trace (open in chrome://tracing or Perfetto)
 *   --timeseries-out PATH  record the flight-recorder telemetry tape
 *                      (MSB load, capped racks, SoC quantiles, CC/CV
 *                      population, Dynamo state) and write CSV — or
 *                      compact JSON when PATH ends in .json
 *   --timeseries-cadence SECS  tape cadence in sim seconds (def. 30)
 *   --timeseries-mode decimate|ring  bounded-memory policy
 *   --events-out PATH  record the structured event log and write
 *                      JSONL (schema dcbatt-events-v1)
 *   --crash-dir DIR    dump a post-mortem crash bundle into DIR on
 *                      any contract/invariant failure (also read
 *                      from $DCBATT_CRASH_DIR); inspect with
 *                      tools/postmortem_inspect.py
 *   --selftest-crash   deliberately trip a DCBATT_REQUIRE after
 *                      arming, to exercise the crash-bundle path
 *   --verbose          debug-level logging on stderr (trace-cache
 *                      hit/miss accounting, etc.)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/charging_event_sim.h"
#include "obs/chrome_trace_writer.h"
#include "obs/crash_bundle.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/time_series_recorder.h"
#include "obs/trace_span.h"
#include "sim/sweep_runner.h"
#include "trace/trace_cache.h"
#include "trace/trace_generator.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/text_table.h"
#include "util/thread_pool.h"

using namespace dcbatt;

namespace {

struct CliOptions
{
    core::PolicyKind policy = core::PolicyKind::PriorityAware;
    int racks = 316;
    int p1 = -1, p2 = -1, p3 = -1;
    std::vector<double> limitsMw{2.5};
    double meanMw = 2.0;
    double dod = 0.5;
    double otSeconds = -1.0;
    bool postpone = false;
    bool restore = false;
    uint64_t seed = 42;
    int threads = 0;  // 0 = hardware concurrency
    double auditSeconds = -1.0;
    std::string csvPath;
    std::string metricsJsonPath;
    std::string traceOutPath;
    std::string timeSeriesOutPath;
    double timeSeriesCadence = 30.0;
    std::string timeSeriesMode = "decimate";
    std::string eventsOutPath;
    std::string crashDirPath;
    bool selftestCrash = false;
    bool verbose = false;
};

std::vector<double>
parseLimitList(const std::string &value)
{
    std::vector<double> limits;
    size_t pos = 0;
    while (pos <= value.size()) {
        size_t comma = value.find(',', pos);
        std::string item = value.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (item.empty())
            util::fatal("--limit-mw: empty list entry");
        limits.push_back(std::atof(item.c_str()));
        if (limits.back() <= 0.0)
            util::fatal(util::strf("--limit-mw: bad entry '%s'",
                                   item.c_str()));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (limits.empty())
        util::fatal("--limit-mw needs at least one value");
    return limits;
}

core::PolicyKind
parsePolicy(const std::string &name)
{
    if (name == "original")
        return core::PolicyKind::OriginalLocal;
    if (name == "variable")
        return core::PolicyKind::VariableLocal;
    if (name == "global")
        return core::PolicyKind::GlobalRate;
    if (name == "priority-aware" || name == "pa")
        return core::PolicyKind::PriorityAware;
    util::fatal(util::strf("unknown policy: %s", name.c_str()));
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions options;
    auto need_value = [&](int i) -> const char * {
        if (i + 1 >= argc) {
            util::fatal(util::strf("flag %s needs a value", argv[i]));
        }
        return argv[i + 1];
    };
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        if (flag == "--policy") {
            options.policy = parsePolicy(need_value(i++));
        } else if (flag == "--racks") {
            options.racks = std::atoi(need_value(i++));
        } else if (flag == "--p1") {
            options.p1 = std::atoi(need_value(i++));
        } else if (flag == "--p2") {
            options.p2 = std::atoi(need_value(i++));
        } else if (flag == "--p3") {
            options.p3 = std::atoi(need_value(i++));
        } else if (flag == "--limit-mw") {
            options.limitsMw = parseLimitList(need_value(i++));
        } else if (flag == "--mean-mw") {
            options.meanMw = std::atof(need_value(i++));
        } else if (flag == "--dod") {
            options.dod = std::atof(need_value(i++));
        } else if (flag == "--ot-seconds") {
            options.otSeconds = std::atof(need_value(i++));
        } else if (flag == "--postpone") {
            options.postpone = true;
        } else if (flag == "--restore") {
            options.restore = true;
        } else if (flag == "--seed") {
            options.seed = static_cast<uint64_t>(
                std::atoll(need_value(i++)));
        } else if (flag == "--threads") {
            options.threads = std::atoi(need_value(i++));
            if (options.threads < 0)
                util::fatal("--threads must be >= 0");
        } else if (flag == "--audit-seconds") {
            options.auditSeconds = std::atof(need_value(i++));
        } else if (flag == "--csv") {
            options.csvPath = need_value(i++);
        } else if (flag == "--metrics-json") {
            options.metricsJsonPath = need_value(i++);
        } else if (flag == "--trace-out") {
            options.traceOutPath = need_value(i++);
        } else if (flag == "--timeseries-out") {
            options.timeSeriesOutPath = need_value(i++);
        } else if (flag == "--timeseries-cadence") {
            options.timeSeriesCadence =
                std::atof(need_value(i++));
            if (options.timeSeriesCadence <= 0.0)
                util::fatal("--timeseries-cadence must be positive");
        } else if (flag == "--timeseries-mode") {
            options.timeSeriesMode = need_value(i++);
            if (options.timeSeriesMode != "decimate"
                && options.timeSeriesMode != "ring")
                util::fatal(
                    "--timeseries-mode must be decimate or ring");
        } else if (flag == "--events-out") {
            options.eventsOutPath = need_value(i++);
        } else if (flag == "--crash-dir") {
            options.crashDirPath = need_value(i++);
        } else if (flag == "--selftest-crash") {
            options.selftestCrash = true;
        } else if (flag == "--verbose") {
            options.verbose = true;
        } else if (flag == "--help" || flag == "-h") {
            std::printf("see the header comment of tools/dcbatt_sim.cc"
                        " for the flag list\n");
            std::exit(0);
        } else {
            util::fatal(util::strf("unknown flag: %s (try --help)",
                                   flag.c_str()));
        }
    }
    if (options.racks <= 0)
        util::fatal("--racks must be positive");
    if (options.dod <= 0.0 || options.dod > 1.0)
        util::fatal("--dod must be in (0, 1]");
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions options = parseArgs(argc, argv);
    if (options.verbose)
        util::setLogLevel(util::LogLevel::Debug);
    if (!options.traceOutPath.empty())
        obs::setTracingEnabled(true);
    if (!options.timeSeriesOutPath.empty()) {
        obs::TimeSeriesOptions ts;
        ts.cadenceSeconds = options.timeSeriesCadence;
        ts.bound = options.timeSeriesMode == "ring"
            ? obs::TimeSeriesBound::Ring
            : obs::TimeSeriesBound::Decimate;
        obs::armTimeSeries(ts);
    }
    if (!options.eventsOutPath.empty())
        obs::setEventLoggingEnabled(true);
    std::string crash_dir = options.crashDirPath;
    if (crash_dir.empty()) {
        if (const char *env = std::getenv("DCBATT_CRASH_DIR"))
            crash_dir = env;
    }
    if (!crash_dir.empty())
        obs::setCrashBundleDir(crash_dir);
    if (options.selftestCrash) {
        // Exercise the post-mortem path end to end: arm (above), put
        // a couple of events on the tape, then trip a contract check
        // exactly the way real invariant failures do.
        if (crash_dir.empty())
            util::fatal("--selftest-crash needs --crash-dir (or "
                        "$DCBATT_CRASH_DIR)");
        obs::setCrashContext("selftest", "1");
        obs::logEvent(0.0, "selftest_marker", {{"step", 1}});
        obs::logEvent(1.0, "selftest_marker", {{"step", 2}});
        DCBATT_REQUIRE(false,
                       "selftest crash requested (--selftest-crash)");
    }
    // All exports are side channels (own files, notes on stderr):
    // stdout stays byte-identical whether or not they are requested.
    auto finish_observability = [&options] {
        if (!options.metricsJsonPath.empty()) {
            obs::writeMetricsJson(options.metricsJsonPath);
            std::fprintf(stderr, "metrics snapshot: %s\n",
                         options.metricsJsonPath.c_str());
        }
        if (!options.traceOutPath.empty()) {
            obs::writeChromeTrace(options.traceOutPath);
            std::fprintf(stderr, "chrome trace: %s\n",
                         options.traceOutPath.c_str());
        }
        if (!options.timeSeriesOutPath.empty()) {
            obs::writeTimeSeries(options.timeSeriesOutPath);
            std::fprintf(stderr, "time series: %s\n",
                         options.timeSeriesOutPath.c_str());
        }
        if (!options.eventsOutPath.empty()) {
            obs::writeEventsJsonl(options.eventsOutPath);
            std::fprintf(stderr, "event log: %s\n",
                         options.eventsOutPath.c_str());
        }
    };

    // Priority mix: explicit counts, or the paper's ratio scaled.
    int p1 = options.p1, p2 = options.p2, p3 = options.p3;
    if (p1 < 0 || p2 < 0 || p3 < 0) {
        p1 = options.racks * 89 / 316;
        p3 = options.racks * 85 / 316;
        p2 = options.racks - p1 - p3;
    } else if (p1 + p2 + p3 != options.racks) {
        util::fatal(util::strf("--p1+--p2+--p3 = %d but --racks = %d",
                               p1 + p2 + p3, options.racks));
    }
    auto priorities = power::makePriorityMix(p1, p2, p3);

    trace::TraceGenSpec tspec;
    tspec.rackCount = options.racks;
    tspec.startTime = util::hours(10.0);
    tspec.duration = util::hours(8.0);
    tspec.seed = options.seed;
    tspec.aggregateMean = util::megawatts(options.meanMw);
    tspec.aggregateAmplitude = util::megawatts(0.05 * options.meanMw);
    tspec.priorities = priorities;

    core::ChargingEventConfig config;
    config.policy = options.policy;
    config.targetMeanDod = options.dod;
    if (options.otSeconds > 0.0)
        config.openTransitionLength = util::Seconds(options.otSeconds);
    config.priorities = priorities;
    config.priorityAwareOptions.allowPostponement = options.postpone;
    config.priorityAwareOptions.restoreOnHeadroom = options.restore;
    if (options.auditSeconds > 0.0)
        config.auditInterval = util::Seconds(options.auditSeconds);

    // Several --limit-mw values: fan the sweep out across a worker
    // pool and print one summary row per limit. The single-limit path
    // below is untouched (and is byte-identical at any --threads).
    if (options.limitsMw.size() > 1) {
        if (!options.csvPath.empty())
            util::fatal("--csv needs a single --limit-mw value");
        util::ThreadPool pool(
            options.threads > 0
                ? static_cast<unsigned>(options.threads)
                : util::ThreadPool::hardwareThreads());
        sim::SweepRunner runner(pool);
        std::vector<sim::SweepTask> tasks;
        for (double limit : options.limitsMw) {
            sim::SweepTask task;
            task.label = util::strf("%.2fMW", limit);
            task.config = config;
            task.config.msbLimit = util::megawatts(limit);
            // Every limit shares the one cached trace set: the first
            // fetch generates, the rest are cache hits (visible with
            // --verbose).
            task.sharedTraces = trace::sharedTraces(tspec);
            tasks.push_back(std::move(task));
        }
        auto stats = trace::traceCacheStats();
        util::debug(util::strf(
            "trace cache after sweep setup: %llu hits, %llu misses "
            "for %zu limits",
            static_cast<unsigned long long>(stats.hits),
            static_cast<unsigned long long>(stats.misses),
            options.limitsMw.size()));
        auto results = runner.run(tasks);

        std::printf("dcbatt_sim: %s, %d racks (%d P1 / %d P2 / %d "
                    "P3), %zu limits\n\n",
                    core::toString(options.policy), options.racks, p1,
                    p2, p3, options.limitsMw.size());
        util::TextTable table({"limit (MW)", "peak MSB (MW)",
                               "overload (s)", "tripped", "P1 met",
                               "P2 met", "P3 met",
                               "max cap (kW)"});
        bool tripped = false;
        for (size_t i = 0; i < results.size(); ++i) {
            const auto &result = results[i];
            tripped = tripped || result.breakerTripped;
            table.addRow(
                {util::strf("%.2f", options.limitsMw[i]),
                 util::strf("%.3f",
                            util::toMegawatts(result.peakPower)),
                 util::strf("%d", result.overloadSteps),
                 result.breakerTripped ? "YES" : "no",
                 util::strf("%d / %d", result.slaMetByPriority[0],
                            result.racksByPriority[0]),
                 util::strf("%d / %d", result.slaMetByPriority[1],
                            result.racksByPriority[1]),
                 util::strf("%d / %d", result.slaMetByPriority[2],
                            result.racksByPriority[2]),
                 util::strf("%.1f",
                            util::toKilowatts(result.maxCap))});
        }
        std::printf("%s", table.render().c_str());
        finish_observability();
        return tripped ? 2 : 0;
    }

    config.msbLimit = util::megawatts(options.limitsMw[0]);
    auto traces = trace::sharedTraces(tspec);
    auto result = core::runChargingEvent(config, *traces);

    std::printf("dcbatt_sim: %s, %d racks (%d P1 / %d P2 / %d P3), "
                "limit %.2f MW\n",
                core::toString(options.policy), options.racks, p1, p2,
                p3, options.limitsMw[0]);
    std::printf("open transition %.0f s at the trace peak, fleet mean "
                "DOD %.2f\n\n",
                result.otLength.value(), result.meanInitialDod);

    util::TextTable table({"metric", "value"});
    table.addRow({"peak MSB power",
                  util::strf("%.3f MW",
                             util::toMegawatts(result.peakPower))});
    table.addRow({"seconds above the limit",
                  util::strf("%d", result.overloadSteps)});
    table.addRow({"breaker tripped",
                  result.breakerTripped ? "YES" : "no"});
    table.addRow({"max server capping",
                  util::strf("%.1f kW (%.1f%% of IT)",
                             util::toKilowatts(result.maxCap),
                             result.maxCapFractionOfIt * 100.0)});
    for (power::Priority p : power::kAllPriorities) {
        int idx = power::priorityIndex(p);
        table.addRow({util::strf("%s SLAs met", toString(p)),
                      util::strf("%d / %d",
                                 result.slaMetByPriority[idx],
                                 result.racksByPriority[idx])});
    }
    int held = 0, outages = 0;
    for (const auto &rack : result.racks) {
        held += rack.everHeld ? 1 : 0;
        outages += rack.sawOutage ? 1 : 0;
    }
    table.addRow({"racks postponed", util::strf("%d", held)});
    table.addRow({"racks with battery-exhaustion outage",
                  util::strf("%d", outages)});
    if (options.auditSeconds > 0.0) {
        table.addRow({"invariant audits (violations)",
                      util::strf("%llu (%llu)",
                                 static_cast<unsigned long long>(
                                     result.auditCount),
                                 static_cast<unsigned long long>(
                                     result.auditViolations))});
    }
    std::printf("%s", table.render().c_str());

    if (!options.csvPath.empty()) {
        std::vector<std::vector<std::string>> rows;
        rows.push_back({"time_s", "msb_w", "it_w", "recharge_w",
                        "cap_w"});
        for (size_t i = 0; i < result.msbPower.size(); ++i) {
            rows.push_back({
                util::strf("%.1f", result.msbPower.timeAt(i).value()),
                util::strf("%.1f", result.msbPower[i]),
                util::strf("%.1f", result.itPower[i]),
                util::strf("%.1f", result.rechargePower[i]),
                util::strf("%.1f", result.capPower[i]),
            });
        }
        util::writeCsvFile(options.csvPath, rows);
        std::printf("\npower series written to %s\n",
                    options.csvPath.c_str());
    }
    finish_observability();
    return result.breakerTripped ? 2 : 0;
}
