#!/usr/bin/env python3
"""detlint — determinism-contract linter for the dcbatt tree.

Scans the deterministic modules (src/battery, src/power, src/core,
src/dynamo, src/sim, src/reliability, src/trace) and the concurrency
infrastructure (src/util, src/obs) for constructs that can make
simulation output depend on hash order, wall clock, entropy, address
layout, or unmanaged threads.  See DESIGN.md §13 for the rule
catalogue and the suppression policy.

Typical invocations:

    # scan the tree against the committed baseline (what CI runs)
    python3 tools/detlint.py --compile-commands build/compile_commands.json \
        --check-baseline --json detlint_report.json

    # run the fixture corpus (wired into ctest as `detlint_selftest`)
    python3 tools/detlint.py --selftest

Exit codes: 0 clean, 1 findings/baseline mismatch/selftest failure,
2 usage or environment error.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from detlint import engine, report as report_mod  # noqa: E402
from detlint.rules import RULES  # noqa: E402

DEFAULT_BASELINE = "tools/detlint_baseline.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="detlint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "--root", default=None,
        help="repo root (default: parent of this script's directory)")
    parser.add_argument(
        "--compile-commands", default=None, metavar="JSON",
        help="compile_commands.json to derive the file list from "
             "(default: <root>/build/compile_commands.json when present; "
             "src/ is always globbed for headers)")
    parser.add_argument(
        "--engine", choices=("lex", "ast"), default="lex",
        help="lex: self-contained lexical engine (default); ast: add the "
             "libclang refinement pass (requires python3 clang bindings)")
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the machine-readable report to PATH")
    parser.add_argument(
        "--check-baseline", nargs="?", const=DEFAULT_BASELINE,
        default=None, metavar="PATH",
        help=f"fail unless findings are zero and suppressions match the "
             f"baseline (default: {DEFAULT_BASELINE})")
    parser.add_argument(
        "--update-baseline", nargs="?", const=DEFAULT_BASELINE,
        default=None, metavar="PATH",
        help="rewrite the baseline from the current (clean) tree")
    parser.add_argument(
        "--selftest", action="store_true",
        help="run the fixture corpus under tests/detlint/ and exit")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="also print audited suppressions")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"detlint: {root} does not look like the repo root "
              "(no src/)", file=sys.stderr)
        return 2

    if args.list_rules:
        for rule in RULES:
            classes = ",".join(rule.classes)
            print(f"{rule.name:20} [{classes}] {rule.summary}")
        return 0

    if args.selftest:
        failures = engine.selftest(root)
        for failure in failures:
            print(f"detlint selftest: {failure}", file=sys.stderr)
        print(f"detlint selftest: "
              f"{'FAIL' if failures else 'PASS'}")
        return 1 if failures else 0

    compile_commands = args.compile_commands
    if compile_commands is None:
        candidate = os.path.join(root, "build", "compile_commands.json")
        if os.path.exists(candidate):
            compile_commands = candidate
    elif not os.path.exists(compile_commands):
        print(f"detlint: no such compile_commands: {compile_commands}",
              file=sys.stderr)
        return 2

    use_ast = args.engine == "ast"
    if use_ast:
        try:
            import clang.cindex  # noqa: F401
        except ImportError:
            print("detlint: --engine=ast needs the python3 clang bindings "
                  "(apt: python3-clang); falling back is deliberate NOT "
                  "done — rerun with --engine=lex", file=sys.stderr)
            return 2

    results, notes = engine.scan_tree(root, compile_commands,
                                      use_ast=use_ast)
    report = report_mod.build_report(results, notes, args.engine)
    print(report_mod.render_text(report, verbose=args.verbose))

    if args.json:
        report_mod.write_json(report, args.json)

    if args.update_baseline:
        if report["finding_count"] != 0:
            print("detlint: refusing to pin a baseline over a tree with "
                  "findings — fix or suppress them first", file=sys.stderr)
            return 1
        baseline = report_mod.baseline_from_report(report)
        path = os.path.join(root, args.update_baseline) \
            if not os.path.isabs(args.update_baseline) else args.update_baseline
        report_mod.write_json(baseline, path)
        print(f"detlint: baseline written to {args.update_baseline}")
        return 0

    if args.check_baseline:
        path = os.path.join(root, args.check_baseline) \
            if not os.path.isabs(args.check_baseline) else args.check_baseline
        if not os.path.exists(path):
            print(f"detlint: baseline missing: {args.check_baseline}",
                  file=sys.stderr)
            return 2
        with open(path, encoding="utf-8") as f:
            baseline = json.load(f)
        problems = report_mod.check_baseline(report, baseline)
        for problem in problems:
            print(f"detlint baseline: {problem}", file=sys.stderr)
        if problems:
            return 1

    return 0 if report["finding_count"] == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
