"""Determinism-contract linter for the dcbatt tree.

The paper's evaluation artifacts are required to be bit-identical at
any ``--threads`` value (DESIGN.md paragraphs 9/11/13).  detlint moves
that contract from runtime diff tests to analysis time: it scans the
deterministic modules for constructs whose behavior depends on hash
order, wall clock, entropy, address layout, or unmanaged threads, and
fails the build unless each occurrence carries an audited suppression
comment:

    // detlint: allow(<rule>) -- <reason>

Package layout:
    source.py   comment/string-aware source model + suppressions
    rules.py    the rule catalogue (regex/structural checks)
    engine.py   file discovery, classification, scanning, selftest
    report.py   machine-readable JSON report + baseline check
    astcheck.py optional libclang AST refinement (gated on the
                python3 clang bindings being installed)
"""

SCHEMA = "dcbatt-detlint-v1"

__all__ = ["SCHEMA"]
