"""Optional libclang refinement pass (``--engine=ast``).

Importing this module requires the python3 clang bindings
(``python3-clang`` / ``pip: libclang``); the CLI gates on that import
and reports a clear error instead of crashing when they are absent —
the container this repo builds in deliberately ships no clang, so the
lexical engine is the default everywhere and this pass is CI-optional.

The refinement keeps the lexical finding set intact (the baseline is
defined over it) and *adds* one higher-precision diagnostic the lexer
cannot express: a range-for statement whose range expression has an
``unordered_`` type, reported as ``unordered-iteration``.  A plain
unordered member that is only ever indexed never trips this rule, so
the AST engine tells audited keyed-lookup suppressions apart from real
iteration sites.
"""

from __future__ import annotations

import json
import os

import clang.cindex as cindex  # noqa: F401  (import is the gate)


def _args_for(entry: dict) -> list[str]:
    if "arguments" in entry:
        args = list(entry["arguments"])[1:]
    else:
        args = entry.get("command", "").split()[1:]
    # Strip output/input operands; keep -I/-D/-std and friends.
    out: list[str] = []
    skip = False
    for a in args:
        if skip:
            skip = False
            continue
        if a in ("-o", "-c"):
            skip = a == "-o"
            continue
        if a.endswith((".cc", ".cpp", ".cxx", ".o")):
            continue
        out.append(a)
    return out


def refine(root: str, compile_commands: str | None, results) -> list[str]:
    """Append ``unordered-iteration`` findings to *results* in place;
    return notes for the report."""
    notes: list[str] = []
    if not compile_commands or not os.path.exists(compile_commands):
        return ["ast engine: no compile_commands.json — AST pass skipped"]
    with open(compile_commands, encoding="utf-8") as f:
        entries = json.load(f)
    by_path = {r.path: r for r in results}
    index = cindex.Index.create()
    parsed = 0
    for entry in entries:
        path = entry.get("file", "")
        if not os.path.isabs(path):
            path = os.path.join(entry.get("directory", ""), path)
        rel = os.path.relpath(os.path.realpath(path),
                              os.path.realpath(root)).replace(os.sep, "/")
        result = by_path.get(rel)
        if result is None or result.module_class != "deterministic":
            continue
        try:
            tu = index.parse(path, args=_args_for(entry))
        except cindex.TranslationUnitLoadError:
            notes.append(f"ast engine: failed to parse {rel}")
            continue
        parsed += 1
        for node in tu.cursor.walk_preorder():
            if node.kind != cindex.CursorKind.CXX_FOR_RANGE_STMT:
                continue
            if not node.location.file:
                continue
            loc_rel = os.path.relpath(
                os.path.realpath(node.location.file.name),
                os.path.realpath(root)).replace(os.sep, "/")
            target = by_path.get(loc_rel)
            if target is None or target.module_class != "deterministic":
                continue
            children = list(node.get_children())
            if not children:
                continue
            range_type = children[0].type.get_canonical().spelling
            if "unordered_" in range_type:
                target.findings.append({
                    "rule": "unordered-iteration",
                    "file": loc_rel,
                    "line": node.location.line,
                    "message": "range-for over an unordered container: "
                               "iteration follows hash-bucket order",
                    "snippet": range_type,
                })
    notes.append(f"ast engine: parsed {parsed} translation unit(s)")
    return notes
