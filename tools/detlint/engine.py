"""File discovery, classification, and scanning for detlint.

Translation units come from ``compile_commands.json`` when one exists
(the canonical view of what actually builds), widened with every
header under ``src/`` — headers hold most of the container and
comparator declarations but never appear in the compilation database.
Without a database the engine falls back to globbing ``src/``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from .rules import (DETERMINISTIC, DETERMINISTIC_MODULES, INFRA,
                    INFRA_MODULES, RULES_BY_NAME, rules_for_class)
from .source import SourceFile

_CXX_EXTENSIONS = (".cc", ".cpp", ".cxx", ".h", ".hpp", ".hh")


@dataclass
class FileResult:
    path: str           # repo-relative, '/'-separated
    module: str
    module_class: str
    findings: list = field(default_factory=list)
    suppressions: list = field(default_factory=list)


def module_of(rel_path: str) -> str | None:
    parts = rel_path.split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def class_of(module: str | None) -> str | None:
    if module in DETERMINISTIC_MODULES:
        return DETERMINISTIC
    if module in INFRA_MODULES:
        return INFRA
    return None


def discover(root: str, compile_commands: str | None) -> list[str]:
    """Return repo-relative paths of the files to scan, sorted."""
    paths: set[str] = set()
    if compile_commands and os.path.exists(compile_commands):
        with open(compile_commands, encoding="utf-8") as f:
            entries = json.load(f)
        for entry in entries:
            path = entry.get("file", "")
            if not os.path.isabs(path):
                path = os.path.join(entry.get("directory", ""), path)
            path = os.path.realpath(path)
            rel = os.path.relpath(path, os.path.realpath(root))
            paths.add(rel.replace(os.sep, "/"))
    src_dir = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src_dir):
        for name in filenames:
            if name.endswith(_CXX_EXTENSIONS):
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                paths.add(rel.replace(os.sep, "/"))
    return sorted(p for p in paths
                  if p.startswith("src/") and class_of(module_of(p)))


def scan_file(root: str, rel_path: str,
              module_class: str | None = None) -> FileResult:
    """Scan one file; *module_class* overrides path-based gating (the
    selftest treats every fixture as deterministic-module code)."""
    module = module_of(rel_path) or "<fixture>"
    cls = module_class or class_of(module)
    assert cls is not None, rel_path
    src = SourceFile.load(os.path.join(root, rel_path))
    result = FileResult(path=rel_path, module=module, module_class=cls)

    raw = []
    for rule in rules_for_class(cls):
        raw.extend(rule.check(src))
    for line, msg in src.bad_directives:
        result.findings.append({
            "rule": "bad-directive", "file": rel_path, "line": line,
            "message": msg,
            "snippet": src.lines[line - 1].strip(),
        })
    for finding in sorted(raw, key=lambda f: (f.line, f.rule)):
        sup = src.suppression_for(finding.rule, finding.line)
        if sup is not None:
            sup.used = True
            result.suppressions.append({
                "rule": finding.rule, "file": rel_path,
                "line": finding.line, "reason": sup.reason,
            })
            continue
        result.findings.append({
            "rule": finding.rule, "file": rel_path, "line": finding.line,
            "message": finding.message, "snippet": finding.snippet,
        })
    for sup in src.unused_suppressions():
        result.findings.append({
            "rule": "unused-suppression", "file": rel_path,
            "line": sup.comment_line,
            "message": f"allow({sup.rule}) suppresses nothing — delete "
                       "it or fix the rule name",
            "snippet": src.lines[sup.comment_line - 1].strip(),
        })
    return result


def scan_tree(root: str, compile_commands: str | None,
              use_ast: bool = False) -> tuple[list[FileResult], list[str]]:
    """Scan the whole tree. Returns (results, notes)."""
    notes: list[str] = []
    results = [scan_file(root, rel) for rel in
               discover(root, compile_commands)]
    if use_ast:
        from . import astcheck  # raises if clang bindings are absent
        notes.extend(astcheck.refine(root, compile_commands, results))
    return results, notes


# -- selftest ---------------------------------------------------------

def selftest(root: str, fixture_dir: str = "tests/detlint") -> list[str]:
    """Run the fixture corpus; return a list of failure strings (empty
    on success).  Fixtures declare expected findings with
    ``// detlint: expect(<rule>)`` on the offending line."""
    failures: list[str] = []
    fdir = os.path.join(root, fixture_dir)
    if not os.path.isdir(fdir):
        return [f"fixture directory missing: {fixture_dir}"]
    names = sorted(n for n in os.listdir(fdir)
                   if n.endswith(_CXX_EXTENSIONS))
    if not names:
        return [f"no fixtures found under {fixture_dir}"]
    exercised: set[str] = set()
    for name in names:
        rel = f"{fixture_dir}/{name}"
        src = SourceFile.load(os.path.join(root, rel))
        result = scan_file(root, rel, module_class=DETERMINISTIC)
        expected = {(line, rule) for line, rule in src.expects}
        actual = {(f["line"], f["rule"]) for f in result.findings}
        for line, rule in sorted(expected - actual):
            failures.append(
                f"{rel}:{line}: expected a {rule} finding, got none")
        for line, rule in sorted(actual - expected):
            failures.append(
                f"{rel}:{line}: unexpected {rule} finding")
        exercised |= {rule for _line, rule in expected}
        exercised |= {s["rule"] for s in result.suppressions}
    missing = set(RULES_BY_NAME) - exercised
    if missing:
        failures.append(
            "fixture corpus exercises no finding for rule(s): "
            + ", ".join(sorted(missing)))
    return failures
