"""JSON report rendering and baseline checking for detlint.

The committed baseline (``tools/detlint_baseline.json``) pins the
tree's audited state: zero findings, plus the exact multiset of
``allow()`` suppressions per (file, rule).  CI fails when a new
finding appears *or* when a suppression is added/removed without the
baseline being updated alongside it — suppressions are part of the
review surface, not an escape hatch.
"""

from __future__ import annotations

import json
from collections import Counter

from . import SCHEMA
from .rules import RULES


def build_report(results, notes, engine: str) -> dict:
    findings = [f for r in results for f in r.findings]
    suppressions = [s for r in results for s in r.suppressions]
    findings.sort(key=lambda f: (f["file"], f["line"], f["rule"]))
    suppressions.sort(key=lambda s: (s["file"], s["line"], s["rule"]))
    return {
        "schema": SCHEMA,
        "engine": engine,
        "rules": [{"name": r.name, "classes": list(r.classes),
                   "summary": r.summary} for r in RULES],
        "files_scanned": len(results),
        "finding_count": len(findings),
        "suppression_count": len(suppressions),
        "findings": findings,
        "suppressions": suppressions,
        "notes": notes,
    }


def baseline_from_report(report: dict) -> dict:
    counts = Counter((s["file"], s["rule"]) for s in report["suppressions"])
    return {
        "schema": SCHEMA + "-baseline",
        "finding_count": 0,
        "suppressions": [
            {"file": file, "rule": rule, "count": count}
            for (file, rule), count in sorted(counts.items())
        ],
    }


def check_baseline(report: dict, baseline: dict) -> list[str]:
    """Return human-readable mismatches (empty when clean)."""
    problems = []
    if report["finding_count"] != 0:
        problems.append(
            f"{report['finding_count']} finding(s) present; the baseline "
            "requires a clean tree")
    current = Counter((s["file"], s["rule"]) for s in report["suppressions"])
    pinned = Counter({(s["file"], s["rule"]): s["count"]
                      for s in baseline.get("suppressions", [])})
    for key in sorted(set(current) | set(pinned)):
        have, want = current.get(key, 0), pinned.get(key, 0)
        if have != want:
            file, rule = key
            problems.append(
                f"{file}: {have} allow({rule}) suppression(s), baseline "
                f"pins {want} — update tools/detlint_baseline.json with "
                "--update-baseline if this is intentional")
    return problems


def render_text(report: dict, verbose: bool = False) -> str:
    lines = []
    for f in report["findings"]:
        lines.append(f"{f['file']}:{f['line']}: [{f['rule']}] {f['message']}")
        if f.get("snippet"):
            lines.append(f"    {f['snippet']}")
    if verbose:
        for s in report["suppressions"]:
            lines.append(
                f"{s['file']}:{s['line']}: suppressed [{s['rule']}] -- "
                f"{s['reason']}")
    lines.append(
        f"detlint: {report['files_scanned']} file(s), "
        f"{report['finding_count']} finding(s), "
        f"{report['suppression_count']} audited suppression(s)"
        f" [engine={report['engine']}]")
    return "\n".join(lines)


def write_json(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2, sort_keys=False)
        f.write("\n")
