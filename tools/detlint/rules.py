"""The detlint rule catalogue.

Every rule is a predicate over the comment/string-blanked code view of
one file (see ``source.py``).  Rules are gated per module class:

* ``deterministic`` — ``src/battery``, ``src/power``, ``src/core``,
  ``src/dynamo``, ``src/sim``, ``src/reliability``, ``src/trace``: the
  modules whose outputs feed the golden artifacts.  All rules apply.
* ``infra`` — ``src/util``, ``src/obs``: support code that may keep
  thread-local scratch or iterate unordered containers for lookups,
  but must still never smuggle wall clock, entropy, or unmanaged
  threads into the simulation (only ``TraceSpan`` reads a clock, under
  an audited suppression).

Findings are (rule, line, message, snippet) tuples; the engine applies
suppressions afterwards so unused ``allow`` comments can be reported.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from .source import SourceFile

DETERMINISTIC_MODULES = (
    "battery",
    "power",
    "core",
    "dynamo",
    "sim",
    "reliability",
    "trace",
)
INFRA_MODULES = ("util", "obs")

DETERMINISTIC = "deterministic"
INFRA = "infra"


@dataclass(frozen=True)
class Finding:
    rule: str
    line: int
    message: str
    snippet: str


@dataclass(frozen=True)
class Rule:
    name: str
    classes: tuple[str, ...]
    summary: str
    check: Callable[[SourceFile], list[Finding]]


def _line_findings(src: SourceFile, rule: str, pattern: re.Pattern,
                   message: str) -> list[Finding]:
    findings = []
    for i, line in enumerate(src.code_lines):
        if pattern.search(line):
            findings.append(Finding(rule=rule, line=i + 1, message=message,
                                    snippet=src.lines[i].strip()))
    return findings


# -- unordered-container ---------------------------------------------

_UNORDERED_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\b")


def _check_unordered(src: SourceFile) -> list[Finding]:
    return _line_findings(
        src, "unordered-container", _UNORDERED_RE,
        "std::unordered_* in a deterministic module: iteration order "
        "follows hash-bucket layout. Use std::map/std::set, or justify "
        "a keyed-lookup-only use with an allow() comment.")


# -- wall-clock ------------------------------------------------------

_WALL_CLOCK_RE = re.compile(
    r"\bstd::chrono::(?:system_clock|steady_clock|high_resolution_clock)\b"
    r"|\bgettimeofday\s*\("
    r"|\bclock_gettime\s*\("
    r"|\bstd::time\s*\("
    r"|(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    r"|\b(?:localtime|gmtime)(?:_r)?\s*\(")


def _check_wall_clock(src: SourceFile) -> list[Finding]:
    return _line_findings(
        src, "wall-clock", _WALL_CLOCK_RE,
        "wall-clock read: simulated results must be a function of the "
        "event queue's virtual time only. Span-only timing may carry "
        "an allow() comment.")


# -- entropy ---------------------------------------------------------

_ENTROPY_RE = re.compile(
    r"\bstd::random_device\b"
    r"|\bstd::s?rand\s*\("
    r"|(?<![\w:])s?rand\s*\("
    r"|\bgetentropy\s*\("
    r"|\bgetrandom\s*\(")


def _check_entropy(src: SourceFile) -> list[Finding]:
    return _line_findings(
        src, "entropy", _ENTROPY_RE,
        "entropy source: all randomness must flow through util::Rng "
        "seeded from the scenario config so runs replay bit-identically.")


# -- thread-local ----------------------------------------------------

_THREAD_LOCAL_RE = re.compile(r"\bthread_local\b")


def _check_thread_local(src: SourceFile) -> list[Finding]:
    return _line_findings(
        src, "thread-local", _THREAD_LOCAL_RE,
        "thread_local state in a deterministic module: values become a "
        "function of thread scheduling, which --threads must not "
        "influence.")


# -- raw-thread ------------------------------------------------------

_RAW_THREAD_RE = re.compile(
    r"\bstd::(?:thread|jthread)\b"
    r"|#\s*include\s*<(?:thread|pthread\.h)>"
    r"|\bpthread_create\s*\("
    r"|\.detach\s*\(\s*\)")


def _check_raw_thread(src: SourceFile) -> list[Finding]:
    return _line_findings(
        src, "raw-thread", _RAW_THREAD_RE,
        "raw thread: parallelism must go through util::ThreadPool / "
        "parallelFor, whose reduction order is deterministic.")


# -- pointer-sort-key ------------------------------------------------

_LAMBDA_INTRO_RE = re.compile(r"\[[^\[\]]*\]\s*\(([^()]*)\)")
_PTR_PARAM_RE = re.compile(
    r"(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*\s*(?:const\s+)?(\w+)\s*$")
_STD_LESS_PTR_RE = re.compile(r"\bstd::less\s*<[^<>]*\*\s*>")


def _check_pointer_sort_key(src: SourceFile) -> list[Finding]:
    findings: list[Finding] = []
    code = src.code
    for m in _STD_LESS_PTR_RE.finditer(code):
        line = code.count("\n", 0, m.start()) + 1
        findings.append(Finding(
            rule="pointer-sort-key", line=line,
            message="std::less over a pointer type: ordering follows "
                    "allocation addresses, which vary run to run.",
            snippet=src.lines[line - 1].strip()))
    for m in _LAMBDA_INTRO_RE.finditer(code):
        params = [p.strip() for p in m.group(1).split(",") if p.strip()]
        if len(params) != 2:
            continue
        names = []
        for p in params:
            pm = _PTR_PARAM_RE.search(p)
            if pm:
                names.append(pm.group(1))
        if len(names) != 2:
            continue
        located = _lambda_body(code, m.end())
        if located is None:
            continue
        body_start, body = located
        a, b = re.escape(names[0]), re.escape(names[1])
        compare = re.compile(
            rf"(?<![\w.>]){a}\s*(?:[<>]=?)\s*{b}(?!\w)"
            rf"|(?<![\w.>]){b}\s*(?:[<>]=?)\s*{a}(?!\w)")
        for bm in compare.finditer(body):
            line = code.count("\n", 0, body_start + bm.start()) + 1
            findings.append(Finding(
                rule="pointer-sort-key", line=line,
                message="comparator orders by raw pointer value: sort "
                        "results follow allocation addresses. Compare "
                        "through the pointees' fields (with a stable id "
                        "tiebreak) instead.",
                snippet=src.lines[line - 1].strip()))
    return findings


def _lambda_body(code: str, start: int) -> tuple[int, str] | None:
    """Return (start index, text) of the brace-balanced body of the
    lambda whose parameter list ends just before *start* (skipping
    specifiers/trailing return type), or None when no body opens
    within the next 200 chars."""
    n = len(code)
    i = start
    while i < n and code[i] != "{":
        if i - start > 200 or code[i] == ";":
            return None
        i += 1
    if i >= n:
        return None
    depth = 0
    j = i
    while j < n:
        if code[j] == "{":
            depth += 1
        elif code[j] == "}":
            depth -= 1
            if depth == 0:
                return i, code[i:j + 1]
        j += 1
    return i, code[i:]


# -- catalogue -------------------------------------------------------

RULES: tuple[Rule, ...] = (
    Rule("unordered-container", (DETERMINISTIC,),
         "iteration over std::unordered_{map,set} (hash-bucket order)",
         _check_unordered),
    Rule("wall-clock", (DETERMINISTIC, INFRA),
         "wall-clock reads outside span-only code",
         _check_wall_clock),
    Rule("entropy", (DETERMINISTIC, INFRA),
         "entropy sources bypassing the seeded util::Rng",
         _check_entropy),
    Rule("pointer-sort-key", (DETERMINISTIC, INFRA),
         "sort keys/comparators over raw pointer values",
         _check_pointer_sort_key),
    Rule("thread-local", (DETERMINISTIC,),
         "thread_local state in deterministic modules",
         _check_thread_local),
    Rule("raw-thread", (DETERMINISTIC, INFRA),
         "raw std::thread / detached threads bypassing util::ThreadPool",
         _check_raw_thread),
)

RULES_BY_NAME = {rule.name: rule for rule in RULES}


def rules_for_class(module_class: str) -> list[Rule]:
    return [rule for rule in RULES if module_class in rule.classes]
