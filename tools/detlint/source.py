"""Comment/string-aware source model for detlint.

Rules must not fire on banned identifiers that only appear inside
comments, string literals, or character literals ("the doc that says
'never use rand()'" is not a violation).  ``SourceFile`` therefore
keeps two parallel views of every file:

* ``text``  — the raw bytes, for snippets and suppression comments;
* ``code``  — the same length/line structure with every comment and
  string/char literal blanked to spaces, for the rules to match on.

It also parses the two detlint comment directives:

* ``// detlint: allow(<rule>) -- <reason>``  suppresses findings of
  ``<rule>`` on the same line, or — when the comment is alone on its
  line — on the next non-blank code line.  The reason is mandatory.
* ``// detlint: expect(<rule>)``  marks the line as an expected
  finding; used only by the fixture corpus under ``--selftest``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


# A line may carry several directives (fixtures pair a deliberately
# malformed allow() with the expect() that asserts its diagnosis), so
# all three patterns are applied with finditer.  An allow reason runs
# to the next `//` or end of line.
_ALLOW_RE = re.compile(
    r"//\s*detlint:\s*allow\(\s*([A-Za-z0-9_-]+)\s*\)"
    r"(?:\s*--\s*((?:(?!//).)*))?"
)
_EXPECT_RE = re.compile(r"//\s*detlint:\s*expect\(\s*([A-Za-z0-9_-]+)\s*\)")
_DIRECTIVE_RE = re.compile(r"//\s*detlint:\s*(\w+)")


@dataclass
class Suppression:
    """One parsed ``allow`` directive."""

    rule: str
    line: int          # line the directive suppresses (1-based)
    comment_line: int  # line the comment itself sits on
    reason: str
    used: bool = False


@dataclass
class SourceFile:
    path: str
    text: str
    code: str = ""
    lines: list[str] = field(default_factory=list)        # raw lines
    code_lines: list[str] = field(default_factory=list)   # blanked lines
    suppressions: list[Suppression] = field(default_factory=list)
    expects: list[tuple[int, str]] = field(default_factory=list)
    # Lines carrying a malformed directive (allow without a reason,
    # unknown verb): reported as findings of the `bad-directive` rule.
    bad_directives: list[tuple[int, str]] = field(default_factory=list)

    @classmethod
    def load(cls, path: str) -> "SourceFile":
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        return cls.parse(path, text)

    @classmethod
    def parse(cls, path: str, text: str) -> "SourceFile":
        src = cls(path=path, text=text)
        src.code = _blank_non_code(text)
        src.lines = text.split("\n")
        src.code_lines = src.code.split("\n")
        src._parse_directives()
        return src

    # -- suppression queries ------------------------------------------

    def suppression_for(self, rule: str, line: int) -> Suppression | None:
        for sup in self.suppressions:
            if sup.rule == rule and sup.line == line:
                return sup
        return None

    def unused_suppressions(self) -> list[Suppression]:
        return [s for s in self.suppressions if not s.used]

    # -- internals ----------------------------------------------------

    def _parse_directives(self) -> None:
        for i, raw in enumerate(self.lines):
            line_no = i + 1
            # Directives live in real comments; the blanked view tells
            # us where code ends on this line.
            code_part = self.code_lines[i] if i < len(self.code_lines) else ""
            verbs = [m.group(1) for m in _DIRECTIVE_RE.finditer(raw)]
            if not verbs:
                continue
            expects = list(_EXPECT_RE.finditer(raw))
            allows = list(_ALLOW_RE.finditer(raw))
            for em in expects:
                self.expects.append((line_no, em.group(1)))
            for am in allows:
                reason = (am.group(2) or "").strip()
                if not reason:
                    self.bad_directives.append(
                        (line_no,
                         "allow() without a reason — write "
                         "'// detlint: allow(<rule>) -- <why this is safe>'"))
                    continue
                target = line_no
                if not code_part.strip():
                    # Comment-only line: suppress the next non-blank
                    # code line.
                    for j in range(i + 1, len(self.code_lines)):
                        if self.code_lines[j].strip():
                            target = j + 1
                            break
                self.suppressions.append(
                    Suppression(rule=am.group(1), line=target,
                                comment_line=line_no, reason=reason))
            for verb in verbs:
                if verb not in ("allow", "expect"):
                    self.bad_directives.append(
                        (line_no, f"unknown detlint directive '{verb}'"))
            # Verbs that named allow/expect but failed their full
            # syntax (e.g. `allow()` with no rule) are also malformed.
            if verbs.count("expect") > len(expects):
                self.bad_directives.append(
                    (line_no, "malformed expect() directive"))
            if verbs.count("allow") > len(allows):
                self.bad_directives.append(
                    (line_no, "malformed allow() directive — write "
                              "'// detlint: allow(<rule>) -- <reason>'"))


def _blank_non_code(text: str) -> str:
    """Return *text* with comments and string/char literals replaced by
    spaces, preserving length and newlines exactly."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = i
            while j < n and text[j] != "\n":
                out[j] = " "
                j += 1
            i = j
        elif c == "/" and nxt == "*":
            j = i
            while j < n - 1 and not (text[j] == "*" and text[j + 1] == "/"):
                if text[j] != "\n":
                    out[j] = " "
                j += 1
            if j < n - 1:  # blank the closing */
                out[j] = " "
                out[j + 1] = " "
                j += 2
            i = j
        elif c == '"' and _raw_string_at(text, i):
            i = _blank_raw_string(text, out, i)
        elif c in ('"', "'"):
            quote = c
            out[i] = " "
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\" and j + 1 < n:
                    if text[j] != "\n":
                        out[j] = " "
                    if text[j + 1] != "\n":
                        out[j + 1] = " "
                    j += 2
                    continue
                if text[j] == "\n":
                    break  # unterminated; stop at line end
                out[j] = " "
                j += 1
            if j < n and text[j] == quote:
                out[j] = " "
                j += 1
            i = j
        else:
            i += 1
    return "".join(out)


def _raw_string_at(text: str, i: int) -> bool:
    """True when the ``"`` at *i* opens a raw string literal R"...( ."""
    return i > 0 and text[i - 1] == "R" and (
        i < 2 or not (text[i - 2].isalnum() or text[i - 2] == "_"))


def _blank_raw_string(text: str, out: list[str], i: int) -> int:
    """Blank a raw string literal starting at the ``"`` at *i*; return
    the index just past its closing quote."""
    n = len(text)
    j = i + 1
    while j < n and text[j] != "(":
        j += 1
    delim = text[i + 1:j]
    closer = ")" + delim + '"'
    end = text.find(closer, j)
    if end == -1:
        end = n - len(closer)
    stop = min(n, end + len(closer))
    for k in range(i, stop):
        if text[k] != "\n":
            out[k] = " "
    return stop
