#!/usr/bin/env python3
"""Pretty-print a dcbatt crash bundle.

A bundle is the directory written by the flight recorder's post-mortem
path (obs/crash_bundle.h) when a DCBATT_REQUIRE / invariant audit
fails while `--crash-dir` (or $DCBATT_CRASH_DIR) is armed:

    manifest.json   schema dcbatt-crash-bundle-v1: the failure record,
                    sim time, run scope, crash context, file list
    failure.txt     the human-readable check-failure description
    events.jsonl    last-N flight-recorder events (dcbatt-events-v1)
    metrics.json    full metrics snapshot (dcbatt-metrics-v1)

Usage:
    tools/postmortem_inspect.py BUNDLE_DIR [--events N] [--json]

--events N   show the last N events (default 15; 0 = all)
--json       re-emit the parsed bundle as one JSON object (for
             scripting; also what the round-trip test consumes)

Exit codes: 0 ok, 1 bad/missing bundle.
"""

import argparse
import json
import os
import sys


def fail(msg):
    print(f"postmortem_inspect: {msg}", file=sys.stderr)
    sys.exit(1)


def load_bundle(bundle_dir):
    manifest_path = os.path.join(bundle_dir, "manifest.json")
    if not os.path.isfile(manifest_path):
        fail(f"no manifest.json in {bundle_dir} (not a crash bundle?)")
    with open(manifest_path, encoding="utf-8") as f:
        try:
            manifest = json.load(f)
        except json.JSONDecodeError as err:
            fail(f"manifest.json is not valid JSON: {err}")
    schema = manifest.get("schema")
    if schema != "dcbatt-crash-bundle-v1":
        fail(f"unknown bundle schema: {schema!r}")

    bundle = {"dir": bundle_dir, "manifest": manifest, "events": [],
              "events_header": None, "metrics": None, "failure_text": None}

    events_path = os.path.join(bundle_dir, "events.jsonl")
    if os.path.isfile(events_path):
        with open(events_path, encoding="utf-8") as f:
            lines = [line for line in f.read().splitlines() if line]
        if not lines:
            fail("events.jsonl is empty (expected a header line)")
        try:
            bundle["events_header"] = json.loads(lines[0])
            bundle["events"] = [json.loads(line) for line in lines[1:]]
        except json.JSONDecodeError as err:
            fail(f"events.jsonl is not valid JSONL: {err}")

    metrics_path = os.path.join(bundle_dir, "metrics.json")
    if os.path.isfile(metrics_path):
        with open(metrics_path, encoding="utf-8") as f:
            try:
                bundle["metrics"] = json.load(f)
            except json.JSONDecodeError as err:
                fail(f"metrics.json is not valid JSON: {err}")

    failure_path = os.path.join(bundle_dir, "failure.txt")
    if os.path.isfile(failure_path):
        with open(failure_path, encoding="utf-8") as f:
            bundle["failure_text"] = f.read().rstrip("\n")

    return bundle


ENVELOPE_KEYS = {"scope", "seq", "t_s", "type"}


def fmt_event(event):
    # Payload fields are flattened next to the envelope keys; keep
    # their on-disk (call-site) order.
    payload = []
    for key, value in event.items():
        if key in ENVELOPE_KEYS:
            continue
        if isinstance(value, float):
            payload.append(f"{key}={value:g}")
        else:
            payload.append(f"{key}={value}")
    scope = event.get("scope", "")
    scope_part = f" [{scope}]" if scope else ""
    return (f"  t={event.get('t_s', 0.0):>10.2f}s{scope_part} "
            f"#{event.get('seq', 0):<4} {event.get('type', '?'):<20} "
            + " ".join(payload))


def print_bundle(bundle, max_events):
    manifest = bundle["manifest"]
    failure = manifest.get("failure", {})
    print(f"crash bundle: {bundle['dir']}")
    print(f"schema:       {manifest.get('schema')}")
    print()
    print("=== failure ===")
    print(f"  kind:      {failure.get('kind', '?')}")
    print(f"  where:     {failure.get('file', '?')}:"
          f"{failure.get('line', '?')} ({failure.get('function', '?')})")
    print(f"  condition: {failure.get('condition', '?')}")
    print(f"  message:   {failure.get('message', '')}")
    sim_time = manifest.get("sim_time_s", -1.0)
    if sim_time >= 0.0:
        print(f"  sim time:  {sim_time:.3f} s")
    else:
        print("  sim time:  (no provider registered)")
    scope = manifest.get("scope", "")
    if scope:
        print(f"  run scope: {scope}")

    context = manifest.get("context", {})
    if context:
        print()
        print("=== crash context ===")
        width = max(len(k) for k in context)
        for key in sorted(context):
            print(f"  {key:<{width}}  {context[key]}")

    events = bundle["events"]
    header = bundle["events_header"] or {}
    print()
    dropped = header.get("dropped", 0)
    dropped_note = f", {dropped} dropped earlier" if dropped else ""
    print(f"=== last events ({len(events)} in bundle{dropped_note}) ===")
    shown = events if max_events == 0 else events[-max_events:]
    if len(shown) < len(events):
        print(f"  ... {len(events) - len(shown)} earlier "
              f"events omitted (--events 0 shows all)")
    for event in shown:
        print(fmt_event(event))
    if not events:
        print("  (none recorded)")

    metrics = bundle["metrics"]
    if metrics is not None:
        entries = metrics.get("metrics", {})
        by_kind = {}
        for name, entry in entries.items():
            by_kind.setdefault(entry.get("kind", "?"), []).append(name)
        kinds = ", ".join(f"{len(names)} {kind}s"
                          for kind, names in sorted(by_kind.items()))
        print()
        print(f"=== metrics snapshot ({kinds or 'empty'}) ===")
        for name in sorted(entries)[:12]:
            entry = entries[name]
            value = entry.get("value", entry.get("total", "?"))
            print(f"  {name:<44} {value}")
        if len(entries) > 12:
            print(f"  ... {len(entries) - 12} more in metrics.json")


def main():
    parser = argparse.ArgumentParser(
        description="Pretty-print a dcbatt crash bundle.")
    parser.add_argument("bundle_dir")
    parser.add_argument("--events", type=int, default=15,
                        help="last N events to show (0 = all)")
    parser.add_argument("--json", action="store_true",
                        help="emit the parsed bundle as JSON")
    args = parser.parse_args()

    bundle = load_bundle(args.bundle_dir)
    if args.json:
        json.dump(bundle, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print_bundle(bundle, args.events)


if __name__ == "__main__":
    main()
