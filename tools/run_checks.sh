#!/usr/bin/env bash
# Correctness gauntlet: build and test the default, asan-ubsan and tsan
# presets, run the determinism-contract linter (tools/detlint.py), and
# finish with a clang-tidy lint pass when clang-tidy is available.
#
# Usage: tools/run_checks.sh [--quick] [--jobs N]
#   --quick   skip the tsan preset (the slowest leg)
#   --jobs N  parallelism for builds and ctest (default: nproc)
#
# Exits nonzero if any build, test run or lint pass fails.

set -u -o pipefail

cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 2)
QUICK=0
for arg in "$@"; do
    case "$arg" in
      --quick) QUICK=1 ;;
      --jobs) ;;  # value consumed below
      [0-9]*) JOBS=$arg ;;
      *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

FAILURES=()

run_leg() {
    local preset=$1
    echo
    echo "=== [$preset] configure ==="
    if ! cmake --preset "$preset"; then
        FAILURES+=("$preset: configure")
        return 1
    fi
    echo "=== [$preset] build ==="
    if ! cmake --build --preset "$preset" -j "$JOBS"; then
        FAILURES+=("$preset: build")
        return 1
    fi
    echo "=== [$preset] test ==="
    if ! ctest --preset "$preset" -j "$JOBS"; then
        FAILURES+=("$preset: test")
        return 1
    fi
}

run_leg default
run_leg asan-ubsan
if [ "$QUICK" -eq 0 ]; then
    run_leg tsan
else
    echo "=== [tsan] skipped (--quick) ==="
fi

echo
echo "=== [detlint] fixture selftest + tree scan vs baseline ==="
# Reuses the default preset's compile_commands.json (exported by the
# configure that just ran), so this leg adds only a few seconds.
if ! python3 tools/detlint.py --selftest; then
    FAILURES+=("detlint: selftest")
fi
if ! python3 tools/detlint.py \
        --compile-commands build/compile_commands.json \
        --check-baseline; then
    FAILURES+=("detlint: tree scan")
fi

echo
if command -v clang-tidy >/dev/null 2>&1; then
    echo "=== [lint] configure + build with clang-tidy ==="
    if ! cmake --preset lint || ! cmake --build --preset lint -j "$JOBS"
    then
        FAILURES+=("lint")
    fi
else
    echo "=== [lint] skipped (clang-tidy not found on PATH) ==="
fi

echo
if [ "${#FAILURES[@]}" -gt 0 ]; then
    echo "FAILED legs:"
    printf '  %s\n' "${FAILURES[@]}"
    exit 1
fi
echo "All checks passed."
